"""Baseline mechanics and CLI behaviour of ``python -m repro.analysis``."""

import json
import os

from repro.analysis import Baseline, Project, main, run_rules

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "fixtures")
BAD = os.path.join(FIXTURES, "bad_la005.py")
CLEAN = os.path.join(FIXTURES, "clean_driver.py")


def _run(path):
    return run_rules(Project.load([path]))


def test_baseline_suppresses_absorbed_findings(tmp_path):
    found = _run(BAD)
    assert found
    baseline = Baseline()
    baseline.absorb(found)
    bpath = tmp_path / "baseline.json"
    baseline.save(str(bpath))
    reloaded = Baseline.load(str(bpath))
    new, suppressed = reloaded.split(_run(BAD))
    assert new == []
    assert len(suppressed) == len(found)


def test_fingerprint_is_line_independent():
    found = _run(BAD)
    f = found[0]
    moved = type(f)(code=f.code, message=f.message, path=f.path,
                    line=f.line + 40, col=3, context=f.context)
    assert moved.fingerprint == f.fingerprint


def test_cli_exit_codes(capsys):
    assert main([BAD, "--no-baseline"]) == 1
    assert main([CLEAN, "--no-baseline"]) == 0
    assert main(["/no/such/path"]) == 2
    capsys.readouterr()


def test_cli_json_format(capsys):
    rc = main([BAD, "--no-baseline", "--format=json"])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert payload["suppressed"] == 0
    assert {f["code"] for f in payload["findings"]} == {"LA005"}
    assert all(f["fingerprint"] for f in payload["findings"])


def test_cli_github_format(capsys):
    rc = main([BAD, "--no-baseline", "--format=github"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "::error file=" in out and "title=LA005" in out


def test_cli_write_baseline_roundtrip(tmp_path, capsys):
    bpath = str(tmp_path / "baseline.json")
    assert main([BAD, "--baseline", bpath, "--write-baseline"]) == 0
    assert main([BAD, "--baseline", bpath]) == 0
    out = capsys.readouterr().out
    assert "suppressed by baseline" in out


def test_cli_select_restricts_rules(capsys):
    rc = main([os.path.join(FIXTURES, "bad_la002.py"), "--no-baseline",
               "--select", "LA007", "--format=json"])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert payload["findings"] == []


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("LA001", "LA002", "LA003", "LA004", "LA005", "LA006",
                 "LA007", "LA008", "LA009", "LA010", "LA011", "LA012",
                 "LA013", "LA014", "LA015"):
        assert code in out


def test_cli_ignore_excludes_rules(capsys):
    # bad_la005.py only violates LA005; ignoring it clears the run.
    assert main([BAD, "--no-baseline", "--ignore", "LA005"]) == 0
    assert main([BAD, "--no-baseline", "--ignore", "LA001"]) == 1
    capsys.readouterr()


def test_cli_ignore_composes_with_select(capsys):
    rc = main([BAD, "--no-baseline", "--select", "LA005,LA007",
               "--ignore", "LA005", "--format=json"])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert payload["findings"] == []


def test_cli_rejects_unknown_codes(capsys):
    assert main([BAD, "--no-baseline", "--select", "LA999"]) == 2
    assert main([BAD, "--no-baseline", "--ignore", "nonsense"]) == 2
    err = capsys.readouterr().err
    assert "unknown rule" in err


def test_cli_ignore_skips_staleness_of_ignored_codes(tmp_path, capsys):
    # An --ignore run is restricted: it can only judge baseline entries
    # for codes that ran.  Ignoring LA005 leaves the LA005 entry alone;
    # a full run flags it as stale.
    found = _run(BAD)
    baseline = Baseline()
    baseline.absorb(found)
    bpath = str(tmp_path / "baseline.json")
    baseline.save(bpath)
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n", encoding="utf-8")
    assert main([str(clean), "--baseline", bpath,
                 "--ignore", "LA005"]) == 0
    assert main([str(clean), "--baseline", bpath]) == 1
    capsys.readouterr()
