"""Baseline mechanics and CLI behaviour of ``python -m repro.analysis``."""

import json
import os

from repro.analysis import Baseline, Project, main, run_rules

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "fixtures")
BAD = os.path.join(FIXTURES, "bad_la005.py")
CLEAN = os.path.join(FIXTURES, "clean_driver.py")


def _run(path):
    return run_rules(Project.load([path]))


def test_baseline_suppresses_absorbed_findings(tmp_path):
    found = _run(BAD)
    assert found
    baseline = Baseline()
    baseline.absorb(found)
    bpath = tmp_path / "baseline.json"
    baseline.save(str(bpath))
    reloaded = Baseline.load(str(bpath))
    new, suppressed = reloaded.split(_run(BAD))
    assert new == []
    assert len(suppressed) == len(found)


def test_fingerprint_is_line_independent():
    found = _run(BAD)
    f = found[0]
    moved = type(f)(code=f.code, message=f.message, path=f.path,
                    line=f.line + 40, col=3, context=f.context)
    assert moved.fingerprint == f.fingerprint


def test_cli_exit_codes(capsys):
    assert main([BAD, "--no-baseline"]) == 1
    assert main([CLEAN, "--no-baseline"]) == 0
    assert main(["/no/such/path"]) == 2
    capsys.readouterr()


def test_cli_json_format(capsys):
    rc = main([BAD, "--no-baseline", "--format=json"])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert payload["suppressed"] == 0
    assert {f["code"] for f in payload["findings"]} == {"LA005"}
    assert all(f["fingerprint"] for f in payload["findings"])


def test_cli_github_format(capsys):
    rc = main([BAD, "--no-baseline", "--format=github"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "::error file=" in out and "title=LA005" in out


def test_cli_write_baseline_roundtrip(tmp_path, capsys):
    bpath = str(tmp_path / "baseline.json")
    assert main([BAD, "--baseline", bpath, "--write-baseline"]) == 0
    assert main([BAD, "--baseline", bpath]) == 0
    out = capsys.readouterr().out
    assert "suppressed by baseline" in out


def test_cli_select_restricts_rules(capsys):
    rc = main([os.path.join(FIXTURES, "bad_la002.py"), "--no-baseline",
               "--select", "LA007", "--format=json"])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert payload["findings"] == []


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("LA001", "LA002", "LA003", "LA004", "LA005", "LA006",
                 "LA007", "LA008", "LA009", "LA010", "LA011", "LA012",
                 "LA013", "LA014", "LA015", "LA016", "LA017", "LA018",
                 "LA019", "LA020"):
        assert code in out


def test_cli_sarif_output_round_trips(capsys):
    rc = main([BAD, "--no-baseline", "--output", "sarif"])
    log = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert log["version"] == "2.1.0"
    (run,) = log["runs"]
    assert run["tool"]["driver"]["name"] == "lalint"
    catalogue = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert {"LA001", "LA017", "LA018", "LA019", "LA020"} <= catalogue
    assert run["results"], "expected results for the seeded fixture"
    findings = _run(BAD)
    by_fp = {f.fingerprint: f for f in findings}
    for result in run["results"]:
        assert result["ruleId"] == "LA005"
        assert result["level"] == "error"
        fp = result["partialFingerprints"]["lalint/v1"]
        match = by_fp[fp]
        assert result["message"]["text"] == match.message
        (loc,) = result["locations"]
        region = loc["physicalLocation"]["region"]
        assert region["startLine"] == match.line
        assert region["startColumn"] == match.col + 1
        assert loc["physicalLocation"]["artifactLocation"]["uri"] \
            .startswith("tests/")
    assert len(run["results"]) == len(findings)


def test_cli_sarif_of_a_clean_tree_is_empty_but_valid(capsys):
    rc = main([CLEAN, "--no-baseline", "--format=sarif"])
    log = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert log["runs"][0]["results"] == []


def test_cli_select_minus_ignore_can_run_nothing(capsys):
    # --select X --ignore X leaves an *empty* selection: no rules run
    # and nothing is reported (the empty set must not be mistaken for
    # "run everything").
    rc = main([BAD, "--no-baseline", "--select", "LA005",
               "--ignore", "LA005", "--format=json"])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert payload["findings"] == []


def test_cli_restricted_run_spares_unselected_baseline_codes(tmp_path,
                                                             capsys):
    # A baseline entry for a flow rule that did not run (here LA017)
    # must never be reported stale by a run restricted to other codes.
    bpath = str(tmp_path / "baseline.json")
    baseline = Baseline()
    baseline.entries["deadbeefdeadbeef"] = {
        "code": "LA017", "context": "la_gesv",
        "fingerprint": "deadbeefdeadbeef",
        "message": "synthetic accepted finding", "path": "x.py"}
    baseline.save(bpath)
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n", encoding="utf-8")
    for code in ("LA001", "LA018", "LA019", "LA020"):
        assert main([str(clean), "--baseline", bpath,
                     "--select", code]) == 0, code
    # The unrestricted run does judge the entry — and finds it stale.
    assert main([str(clean), "--baseline", bpath]) == 1
    capsys.readouterr()


def test_cli_restricted_write_baseline_keeps_other_codes(tmp_path,
                                                         capsys):
    # Regenerating the baseline under --select only replaces entries
    # for the rules that ran; foreign suppressions survive verbatim.
    bpath = str(tmp_path / "baseline.json")
    baseline = Baseline()
    baseline.entries["deadbeefdeadbeef"] = {
        "code": "LA017", "context": "la_gesv",
        "fingerprint": "deadbeefdeadbeef",
        "message": "synthetic accepted finding", "path": "x.py"}
    baseline.save(bpath)
    assert main([BAD, "--baseline", bpath, "--select", "LA005",
                 "--write-baseline"]) == 0
    rewritten = Baseline.load(bpath)
    codes = {e.get("code") for e in rewritten.entries.values()}
    assert "LA017" in codes and "LA005" in codes
    # An unrestricted regeneration starts from scratch.
    assert main([BAD, "--baseline", bpath, "--write-baseline"]) == 0
    assert {e.get("code")
            for e in Baseline.load(bpath).entries.values()} == {"LA005"}
    capsys.readouterr()


def test_cli_ignore_excludes_rules(capsys):
    # bad_la005.py only violates LA005; ignoring it clears the run.
    assert main([BAD, "--no-baseline", "--ignore", "LA005"]) == 0
    assert main([BAD, "--no-baseline", "--ignore", "LA001"]) == 1
    capsys.readouterr()


def test_cli_ignore_composes_with_select(capsys):
    rc = main([BAD, "--no-baseline", "--select", "LA005,LA007",
               "--ignore", "LA005", "--format=json"])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert payload["findings"] == []


def test_cli_rejects_unknown_codes(capsys):
    assert main([BAD, "--no-baseline", "--select", "LA999"]) == 2
    assert main([BAD, "--no-baseline", "--ignore", "nonsense"]) == 2
    err = capsys.readouterr().err
    assert "unknown rule" in err


def test_cli_ignore_skips_staleness_of_ignored_codes(tmp_path, capsys):
    # An --ignore run is restricted: it can only judge baseline entries
    # for codes that ran.  Ignoring LA005 leaves the LA005 entry alone;
    # a full run flags it as stale.
    found = _run(BAD)
    baseline = Baseline()
    baseline.absorb(found)
    bpath = str(tmp_path / "baseline.json")
    baseline.save(bpath)
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n", encoding="utf-8")
    assert main([str(clean), "--baseline", bpath,
                 "--ignore", "LA005"]) == 0
    assert main([str(clean), "--baseline", bpath]) == 1
    capsys.readouterr()
