"""lalint spec rules (LA009/LA010) and the stale-baseline guard.

The spec rules compare analysed trees against the *real* driver-spec
registry, so the fixtures are synthesised under a ``repro/core/`` path
inside ``tmp_path`` — only modules there are in scope for LA009/LA010.
"""

import json
import os

from repro.analysis import Project, run_rules
from repro.analysis.cli import main
from repro.specs import SPECS

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))

BAD_POSITIONS = '''\
def la_gesv(x, b, ipiv=None, info=None):
    linfo = validate_args("la_gesv", a=x, b=b, ipiv=ipiv)
    _report("LA_GESV", linfo, info)
    return b
'''

HAND_ROLLED = '''\
def la_gtsv(dl, d, du, b, info=None):
    linfo = 0
    if dl is None:
        linfo = -1
    _report("LA_GTSV", linfo, info)
    return b
'''

NO_SPEC = '''\
def la_frobnicate(a, info=None):
    linfo = validate_args("la_frobnicate", a=a)
    _report("LA_FROBNICATE", linfo, info)
    return a
'''


def _core_tree(tmp_path, files):
    root = tmp_path / "repro" / "core"
    root.mkdir(parents=True)
    paths = []
    for name, source in files.items():
        p = root / name
        p.write_text(source, encoding="utf-8")
        paths.append(str(p))
    return paths


def _findings(paths, code):
    return [f for f in run_rules(Project.load(paths)) if f.code == code]


class TestLA009:
    def test_unknown_spec_argument(self, tmp_path):
        paths = _core_tree(tmp_path, {"solvers.py": BAD_POSITIONS})
        found = _findings(paths, "LA009")
        assert len(found) == 1
        assert "declares argument 'a'" in found[0].message
        assert found[0].context == "la_gesv"

    def test_hand_rolled_ladder(self, tmp_path):
        paths = _core_tree(tmp_path, {"tridiag.py": HAND_ROLLED})
        found = _findings(paths, "LA009")
        assert len(found) == 1
        assert "hand-rolled validation ladder" in found[0].message
        assert "validate_args" in found[0].message

    def test_out_of_scope_tree_is_exempt(self, tmp_path):
        other = tmp_path / "other"
        other.mkdir()
        p = other / "solvers.py"
        p.write_text(BAD_POSITIONS, encoding="utf-8")
        assert _findings([str(p)], "LA009") == []
        assert _findings([str(p)], "LA010") == []

    def test_shipped_core_is_clean(self):
        src = os.path.join(REPO, "src", "repro", "core")
        assert _findings([src], "LA009") == []


class TestLA010:
    def test_core_driver_without_spec(self, tmp_path):
        paths = _core_tree(tmp_path, {"extras.py": NO_SPEC})
        found = _findings(paths, "LA010")
        assert len(found) == 1
        assert "la_frobnicate has no registered driver spec" \
            in found[0].message

    def test_reverse_check_requires_core_init(self, tmp_path):
        # Without a core/__init__.py in the tree the export side of the
        # check cannot run — a partial scan must not flag every spec.
        paths = _core_tree(tmp_path, {"solvers.py": BAD_POSITIONS})
        assert _findings(paths, "LA010") == []

    def test_spec_not_exported_by_core_init(self, tmp_path):
        paths = _core_tree(tmp_path, {
            "solvers.py": BAD_POSITIONS,
            "__init__.py": "from .solvers import la_gesv\n",
        })
        found = _findings(paths, "LA010")
        assert len(found) == len(SPECS) - 1
        assert all("names no driver exported" in f.message
                   for f in found)

    def test_shipped_tree_is_clean(self):
        src = os.path.join(REPO, "src", "repro")
        assert _findings([src], "LA010") == []


class TestStaleBaseline:
    def _baseline(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"findings": [{
            "code": "LA001",
            "context": "la_gone",
            "fingerprint": "deadbeefdeadbeef",
            "message": "exit path returns without reporting",
            "path": "src/repro/gone.py",
        }]}), encoding="utf-8")
        return str(path)

    def test_stale_entry_fails_the_run(self, tmp_path, capsys):
        mod = tmp_path / "clean.py"
        mod.write_text("x = 1\n", encoding="utf-8")
        rc = main([str(mod), "--baseline", self._baseline(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "stale baseline entry deadbeefdeadbeef" in out

    def test_select_checks_staleness_for_selected_codes(self, tmp_path,
                                                        capsys):
        # A --select run still judges baseline freshness for the rules
        # that actually ran: the stale LA001 entry fails a LA001 run.
        mod = tmp_path / "clean.py"
        mod.write_text("x = 1\n", encoding="utf-8")
        rc = main([str(mod), "--baseline", self._baseline(tmp_path),
                   "--select", "LA001"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "stale baseline entry deadbeefdeadbeef" in out

    def test_select_ignores_staleness_of_unselected_codes(self, tmp_path,
                                                          capsys):
        # ... but an LA002-only run cannot judge the LA001 entry.
        mod = tmp_path / "clean.py"
        mod.write_text("x = 1\n", encoding="utf-8")
        rc = main([str(mod), "--baseline", self._baseline(tmp_path),
                   "--select", "LA002"])
        capsys.readouterr()
        assert rc == 0

    def test_shipped_baseline_has_no_stale_entries(self, capsys):
        src = os.path.join(REPO, "src", "repro")
        baseline = os.path.join(REPO, "lalint.baseline.json")
        rc = main([src, "--baseline", baseline])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "stale" not in out
