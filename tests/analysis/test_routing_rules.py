"""LA022: the structure→driver routing table is derived from DriverSpec
metadata (repro.specs.routing), never written by hand."""

import os

from repro.analysis import Project, run_rules
from repro.analysis.rules import STRUCTURE_LABELS
from repro.specs.routing import STRUCTURES

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "fixtures")
REPO = os.path.dirname(os.path.dirname(HERE))
SRC = os.path.join(REPO, "src", "repro")


def _fixture(*names):
    return [os.path.join(FIXTURES, n) for n in names]


def _findings(paths, code=None):
    found = run_rules(Project.load(paths))
    if code is not None:
        found = [f for f in found if f.code == code]
    return found


def _marked_lines(path, code):
    with open(path, "r", encoding="utf-8") as fh:
        return sorted(i for i, line in enumerate(fh, 1)
                      if f"lint: {code}" in line)


def test_rule_vocabulary_matches_routing_module():
    """The lint rule's literal label set (rules never import the code
    under analysis) must track the routing module's vocabulary."""
    assert STRUCTURE_LABELS == set(STRUCTURES)


def test_la022_fires_on_seeded_violations():
    paths = _fixture("bad_la022.py")
    found = _findings(paths, "LA022")
    got = sorted(f.line for f in found)
    want = _marked_lines(paths[0], "LA022")
    assert got == want, f"LA022 findings at {got}, markers at {want}"
    messages = " | ".join(f.message for f in found)
    assert "dict literal" in messages
    assert "if/elif ladder" in messages


def test_la022_bad_fixture_only_fires_la022():
    found = _findings(_fixture("bad_la022.py"))
    assert {f.code for f in found} == {"LA022"}


def test_la022_clean_fixture_is_quiet():
    assert _findings(_fixture("good_la022.py"), "LA022") == []


def test_shipped_tree_has_no_la022():
    """The acceptance gate: the whole front door ships with an empty
    LA022 baseline — the dispatch layer itself contains no hand-rolled
    structure routing."""
    found = run_rules(Project.load([SRC]), select={"LA022"})
    assert found == [], "\n".join(f.render() for f in found)
