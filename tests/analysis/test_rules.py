"""lalint self-tests: every rule LA001-LA007 fires on its seeded
fixture (exact codes and line numbers) and stays quiet on a conforming
driver; the shipped tree is clean modulo the committed baseline.

Violating fixture lines carry a ``# lint: LAxxx`` marker; the expected
locations are read back from those markers so the assertions pin exact
positions without hard-coding line numbers.
"""

import os

from repro.analysis import Baseline, Project, run_rules

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "fixtures")
REPO = os.path.dirname(os.path.dirname(HERE))


def _fixture(*names):
    return [os.path.join(FIXTURES, n) for n in names]


def _findings(paths, code=None):
    project = Project.load(paths)
    found = run_rules(project)
    if code is not None:
        found = [f for f in found if f.code == code]
    return found


def _marked_lines(path, code):
    with open(path, "r", encoding="utf-8") as fh:
        return sorted(i for i, line in enumerate(fh, 1)
                      if f"lint: {code}" in line)


def _assert_matches_markers(paths, code):
    found = _findings(paths, code)
    got = sorted(f.line for f in found)
    want = []
    for path in paths:
        if os.path.isdir(path):
            for root, _, files in os.walk(path):
                for name in sorted(files):
                    if name.endswith(".py"):
                        want += _marked_lines(os.path.join(root, name),
                                              code)
        else:
            want += _marked_lines(path, code)
    assert got == sorted(want), \
        f"{code}: findings at {got}, markers at {sorted(want)}"
    assert all(f.code == code for f in found)
    return found


def test_la001_fires_on_seeded_violations():
    found = _assert_matches_markers(_fixture("bad_la001.py"), "LA001")
    messages = " | ".join(f.message for f in found)
    assert "exit path" in messages
    assert "bare except" in messages
    assert "direct raise" in messages


def test_la002_fires_on_seeded_violations():
    found = _assert_matches_markers(_fixture("bad_la002.py"), "LA002")
    messages = " | ".join(f.message for f in found)
    assert "check helper declares" in messages
    assert "does not match the flagged argument" in messages
    assert "driver_guard flags" in messages
    assert "error-exit table" in messages


def test_la003_fires_on_seeded_violations():
    found = _assert_matches_markers(_fixture("bad_la003.py"), "LA003")
    messages = " | ".join(f.message for f in found)
    assert "does not accept an info argument" in messages
    assert "must default info to None" in messages
    assert "never threads info" in messages


def test_la004_fires_on_seeded_violations():
    found = _assert_matches_markers(_fixture("bad_la004.py"), "LA004")
    messages = " | ".join(f.message for f in found)
    assert "runs after" in messages
    assert "driver_guard runs after the first substrate call" in messages


def test_la005_fires_on_seeded_violations():
    found = _assert_matches_markers(_fixture("bad_la005.py"), "LA005")
    messages = " | ".join(f.message for f in found)
    assert "missing from __all__" in messages
    assert "exports undefined name la_nothere" in messages


def test_la006_fires_on_seeded_violations():
    found = _assert_matches_markers(
        [os.path.join(FIXTURES, "la006bad")], "LA006")
    messages = " | ".join(f.message for f in found)
    assert "nosuchroutine" in messages
    assert "la_hesv partner" in messages


def test_la007_fires_on_seeded_violations():
    found = _assert_matches_markers(_fixture("bad_la007.py"), "LA007")
    messages = " | ".join(f.message for f in found)
    assert "NonFiniteInput" in messages
    assert "warning band" in messages
    assert "ALLOC_FAILED" in messages


def test_la008_fires_on_seeded_violations():
    found = _assert_matches_markers(_fixture("bad_la008.py"), "LA008")
    messages = " | ".join(f.message for f in found)
    assert "repro.backends.kernels" in messages


def test_conforming_driver_is_clean():
    assert _findings(_fixture("clean_driver.py")) == []


def test_conforming_la006_tree_is_clean():
    assert _findings([os.path.join(FIXTURES, "la006ok")]) == []


def test_bad_fixtures_only_fire_their_own_rule():
    for name, code in [("bad_la001.py", "LA001"), ("bad_la003.py",
                       "LA003"), ("bad_la004.py", "LA004"),
                      ("bad_la005.py", "LA005"), ("bad_la007.py",
                       "LA007"), ("bad_la008.py", "LA008"),
                      ("bad_la021.py", "LA021")]:
        found = _findings(_fixture(name))
        assert {f.code for f in found} == {code}, name


def test_shipped_tree_clean_modulo_baseline():
    src = os.path.join(REPO, "src", "repro")
    baseline = Baseline.load(os.path.join(REPO, "lalint.baseline.json"))
    found = run_rules(Project.load([src]))
    new, _ = baseline.split(found)
    assert new == [], "\n".join(f.render() for f in new)


def test_delegating_drivers_resolve_positions():
    """la_sysv-style helpers are analysed with call-site positions —
    the shipped tree must yield no LA002 on the indefinite drivers."""
    src = os.path.join(REPO, "src", "repro", "core",
                       "linear_equations.py")
    assert _findings([src], "LA002") == []
