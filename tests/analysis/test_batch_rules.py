"""LA021 (no hand-rolled batch ladders) and the derived ``*_stack``
kernel effect summaries that teach laflow the generated batch wrappers.
"""

import os

from repro.analysis import Project, run_rules
from repro.analysis.flow.summaries import kernel_effects
from repro.specs import SPECS

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "fixtures")
REPO = os.path.dirname(os.path.dirname(HERE))
SRC = os.path.join(REPO, "src", "repro")


def _fixture(*names):
    return [os.path.join(FIXTURES, n) for n in names]


def _findings(paths, code=None):
    found = run_rules(Project.load(paths))
    if code is not None:
        found = [f for f in found if f.code == code]
    return found


def _marked_lines(path, code):
    with open(path, "r", encoding="utf-8") as fh:
        return sorted(i for i, line in enumerate(fh, 1)
                      if f"lint: {code}" in line)


def test_la021_fires_on_seeded_violations():
    paths = _fixture("bad_la021.py")
    found = _findings(paths, "LA021")
    got = sorted(f.line for f in found)
    want = _marked_lines(paths[0], "LA021")
    assert got == want, f"LA021 findings at {got}, markers at {want}"
    messages = " | ".join(f.message for f in found)
    assert "validate_batch" in messages
    assert "hand-written batch wrapper batch_gesv" in messages


def test_la021_bad_fixture_only_fires_la021():
    found = _findings(_fixture("bad_la021.py"))
    assert {f.code for f in found} == {"LA021"}


def test_la021_clean_fixture_is_quiet():
    assert _findings(_fixture("good_la021.py"), "LA021") == []


def test_shipped_tree_has_no_la021():
    found = run_rules(Project.load([SRC]), select={"LA021"})
    assert found == [], "\n".join(f.render() for f in found)


def test_stack_kernel_effects_derived_from_parent_specs():
    """Every batchable spec's ``<kernel>_stack`` entry mirrors the
    parent kernel's effect signature — laflow learns the generated
    wrappers without hand-written exemptions."""
    project = Project.load([SRC])
    effects = kernel_effects(project, SPECS)
    batchable = [s for s in SPECS.values() if s.batchable and s.kernel]
    assert batchable, "registry lost its batchable opt-ins"
    for spec in batchable:
        parent = effects.get(spec.kernel)
        if parent is None:
            continue
        stacked = effects[spec.kernel + "_stack"]
        assert stacked.params == parent.params
        assert stacked.arrays == parent.arrays
        assert stacked.written == parent.written


def test_stack_effects_not_derived_for_non_batchable():
    project = Project.load([SRC])
    effects = kernel_effects(project, SPECS)
    batch_kernels = {s.kernel for s in SPECS.values() if s.batchable}
    for kernel in effects:
        if kernel.endswith("_stack"):
            assert kernel[:-len("_stack")] in batch_kernels, kernel
