"""LA023–LA026 self-tests: the concurrency rules fire on their seeded
fixtures (exact marker lines), stay quiet on the conforming twins, and
the lock-model machinery behind them — locksets joining at branch
merges, locksets propagating through memoized cross-module summaries,
STATE_LOCK re-entrancy, the ``guarded_by`` registry derived from the
LA015/LA016 owner tables, and pragma verification — is exercised
against synthesized module trees.

The fixtures live flat under ``fixtures/concurrency/``: each declares
its own lock and a ``_LAFLOW_GUARDED`` table, the declarative opt-in
for guarded state outside the shipped registry.
"""

import os
import textwrap

from repro.analysis import Project, run_rules
from repro.analysis.flow import (GUARDED_BY, check_la023, check_la024,
                                 check_la025, check_la026)
from repro.analysis.flow.rules import (GLOBAL_STATE, RESILIENCE_STATE,
                                       _UNLOCKED_OK)

HERE = os.path.dirname(os.path.abspath(__file__))
CONC = os.path.join(HERE, "fixtures", "concurrency")
REPO = os.path.dirname(os.path.dirname(HERE))

CHECKS = {"LA023": check_la023, "LA024": check_la024,
          "LA025": check_la025, "LA026": check_la026}


def _fixture(name):
    return os.path.join(CONC, name)


def _findings(paths, code):
    return CHECKS[code](Project.load(list(paths)))


def _marked_lines(path, code):
    with open(path, "r", encoding="utf-8") as fh:
        return sorted(i for i, line in enumerate(fh, 1)
                      if f"lint: {code}" in line)


def _assert_matches_markers(name, code):
    path = _fixture(name)
    got = sorted(f.line for f in _findings([path], code))
    want = _marked_lines(path, code)
    assert got == want, f"{code}: findings at {got}, markers at {want}"


# -- fixtures fire exactly on their markers ----------------------------

def test_la023_fires_on_seeded_violations():
    _assert_matches_markers("bad_la023.py", "LA023")


def test_la024_fires_on_seeded_violations():
    _assert_matches_markers("bad_la024.py", "LA024")


def test_la025_fires_on_seeded_violations():
    _assert_matches_markers("bad_la025.py", "LA025")


def test_la026_fires_on_seeded_violations():
    _assert_matches_markers("bad_la026.py", "LA026")


def test_good_concurrency_fixtures_are_clean():
    for name in ("good_la023.py", "good_la024.py", "good_la025.py",
                 "good_la026.py"):
        for code in CHECKS:
            assert _findings([_fixture(name)], code) == [], (name, code)


def test_bad_concurrency_fixtures_only_fire_their_own_rule():
    for name, code in (("bad_la023.py", "LA023"),
                       ("bad_la024.py", "LA024"),
                       ("bad_la025.py", "LA025"),
                       ("bad_la026.py", "LA026")):
        found = run_rules(Project.load([_fixture(name)]))
        assert {f.code for f in found} == {code}, (name, found)


# -- the lock model itself ---------------------------------------------

def test_branch_merge_drops_one_armed_locks():
    # ``one_armed_join`` acquires only on one arm; the merged lockset
    # after the ``if`` must not still hold the lock.
    found = _findings([_fixture("bad_la023.py")], "LA023")
    assert any(f.context == "one_armed_join" for f in found)


def test_both_arm_acquisition_survives_the_merge():
    # ``both_arms`` in the good twin acquires on *both* arms — the
    # must-intersection keeps the lock and the guarded read is clean.
    assert _findings([_fixture("good_la023.py")], "LA023") == []


def test_reentrant_state_lock_is_not_a_cycle():
    # ``with STATE_LOCK:`` nested inside ``with STATE_LOCK:`` models the
    # RLock: no self-deadlock finding, unlike LOCK_A in the bad twin.
    assert _findings([_fixture("good_la025.py")], "LA025") == []
    found = _findings([_fixture("bad_la025.py")], "LA025")
    assert any("self-deadlock" in f.message for f in found)
    assert any("lock-order cycle" in f.message for f in found)


def test_interprocedural_split_reports_at_the_act(tmp_path=None):
    # ``split_across_helpers`` locks correctly inside each helper; only
    # the lockset threaded through both summaries exposes the split.
    found = _findings([_fixture("bad_la024.py")], "LA024")
    assert any(f.context == "split_across_helpers" for f in found)


# -- synthesized owner trees (the shipped registry, not _LAFLOW_GUARDED)

def _write_tree(tmp_path, files):
    paths = []
    for rel, body in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(body))
        paths.append(str(path))
    return Project.load([str(tmp_path)])


def test_owner_suffix_derivation_guards_policy(tmp_path):
    # A module whose path matches the LA015 owner suffix inherits the
    # registry entry without declaring _LAFLOW_GUARDED.
    project = _write_tree(tmp_path, {
        "repro/policy.py": """\
            _POLICY = object()

            def set_policy_badly(value):
                global _POLICY
                _POLICY = value
            """,
    })
    found = check_la023(project)
    assert [f.line for f in found] == [5]
    assert "_POLICY" in found[0].message
    assert "STATE_LOCK" in found[0].message


def test_cross_module_summary_propagates_the_callers_lockset(tmp_path):
    # The helper mutates guarded state with no lock of its own — its
    # summary, replayed into a locked cross-module caller, inherits the
    # caller's lockset (the shipped breaker._sync shape)...
    cache_body = """\
        import threading

        STATE_LOCK = threading.RLock()

        _ENTRIES = {}

        def _bump(key):
            _ENTRIES[key] = _ENTRIES.get(key, 0) + 1

        def bump_locked(key):
            with STATE_LOCK:
                _bump(key)
        """
    clean = _write_tree(tmp_path / "clean", {
        "repro/dispatch_front/cache.py": cache_body,
        "repro/dispatch_front/api.py": """\
            from .cache import STATE_LOCK, _bump

            def locked_front(key):
                with STATE_LOCK:
                    _bump(key)
            """,
    })
    assert check_la023(clean) == []
    # ... while an unlocked cross-module caller leaves the helper's
    # guarded accesses bare, reported at the helper's own line.
    dirty = _write_tree(tmp_path / "dirty", {
        "repro/dispatch_front/cache.py": cache_body,
        "repro/dispatch_front/api.py": """\
            from .cache import _bump

            def unlocked_front(key):
                _bump(key)
            """,
    })
    found = check_la023(dirty)
    assert found and all(f.path.endswith("cache.py") for f in found)
    assert {f.line for f in found} == {8}
    assert {f.context for f in found} == {"unlocked_front"}


def test_pragma_requires_a_justification(tmp_path):
    project = _write_tree(tmp_path, {
        "mod.py": """\
            import threading

            STATE_LOCK = threading.RLock()

            _LAFLOW_GUARDED = {"_T": "STATE_LOCK"}

            _T = {}

            def f(key):
                with STATE_LOCK:
                    return _T.get(key)  # laflow: benign-race
            """,
    })
    found = check_la023(project)
    assert [f.line for f in found] == [11]
    assert "justification" in found[0].message


# -- the registry and the shipped tree ---------------------------------

def test_guarded_by_covers_the_la015_la016_tables():
    # Every name the syntactic owner rules police is in the lock model
    # (with the same owner), except the thread-local deadline stack.
    for name, (owner, _api) in {**GLOBAL_STATE,
                                **RESILIENCE_STATE}.items():
        if name in _UNLOCKED_OK:
            assert name not in GUARDED_BY
        else:
            assert GUARDED_BY[name][0] == owner, name
            assert GUARDED_BY[name][1] == "STATE_LOCK", name


def test_shipped_tree_is_concurrency_clean():
    # Also proves every shipped pragma is load-bearing: a pragma no
    # reached access matches is itself a finding.
    project = Project.load([os.path.join(REPO, "src", "repro")])
    for code, check in CHECKS.items():
        assert check(project) == [], code
