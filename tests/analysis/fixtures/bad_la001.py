"""Seeded LA001 violations: unreported exit, bare except, direct raise."""

from repro.errors import SingularMatrix, erinfo


def la_gesv(a, b, info=None):
    srname = "LA_GESV"
    linfo = 0
    if a.ndim != 2:
        return b                                # lint: LA001
    try:
        linfo = int(b.shape[0])
    except:                                     # lint: LA001
        pass
    if linfo > 0:
        raise SingularMatrix(srname, linfo)     # lint: LA001
    erinfo(linfo, srname, info)
    return b
