"""Substrate stub for the conforming LA006 fixture tree."""


def sysv(a, b):
    return None, 0


def hesv(a, b):
    return None, 0
