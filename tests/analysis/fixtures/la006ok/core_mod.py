"""Conforming LA006 fixture: both halves of the real/complex pair exist
and every substrate import resolves."""

from repro.errors import erinfo
from ..backends.kernels import hesv, sysv


def la_sysv(a, b, info=None):
    _, linfo = sysv(a, b)
    erinfo(linfo, "LA_SYSV", info)
    return b


def la_hesv(a, b, info=None):
    _, linfo = hesv(a, b)
    erinfo(linfo, "LA_HESV", info)
    return b
