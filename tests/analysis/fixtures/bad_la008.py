"""Seeded LA008 violations: a driver module reaching past the backend
registry straight into the lapack77 substrate (every other rule must
stay quiet — the driver itself obeys the wrapper contract)."""

import numpy as np

from repro.errors import Info, erinfo
from repro.lapack77 import gesv                     # lint: LA008
from repro.lapack77.chol import posv                # lint: LA008
from repro.core.auxmod import check_rhs, check_square, driver_guard

import repro.lapack77 as l77                        # lint: LA008

__all__ = ["la_gesv"]


def la_gesv(a, b, ipiv=None, info=None):
    srname = "LA_GESV"
    linfo = 0
    exc = None
    n = a.shape[0] if isinstance(a, np.ndarray) and a.ndim == 2 else -1
    if check_square(a, 1):
        linfo = -1
    elif check_rhs(n, b, 2):
        linfo = -2
    elif ipiv is not None and ipiv.shape[0] != n:
        linfo = -3
    elif n > 0:
        linfo, exc = driver_guard(srname, (1, a), (2, b))
        if linfo == 0:
            _, linfo = gesv(a, b)
    erinfo(linfo, srname, info, exc=exc)
    return b
