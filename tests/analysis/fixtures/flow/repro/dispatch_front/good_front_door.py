"""Front-door clean fixture: the borrowed la_posv ladder forwards the
same argument set the driver's own call site passes, so every declared
exit keeps its reachability through the dispatch route.  A dynamically
named replay is statically unmappable and therefore skipped, never
guessed at.
"""

from repro.specs import validate_args


def _solve_chol(a, b, uplo):
    return validate_args("la_posv", a=a, b=b, uplo=uplo)


def _replay(name, **bound):
    return validate_args(name, **bound)
