"""Seeded front-door LA017 violations: borrowed validation ladders
that silently change the driver's documented error contract.

``_solve_lu`` replays the la_gesv ladder without ``ipiv`` — the optlen
check is disarmed forever and exit -3 becomes unreachable on this
route.  ``_solve_chol`` omits ``b`` from the la_posv ladder — the rhs
check for exit -2 fires on every call and shadows the later flag exit.
"""

from repro.specs import validate_args


def _solve_lu(a, b):
    linfo = validate_args("la_gesv", a=a, b=b)          # lint: LA017
    return linfo


def _solve_chol(a, uplo):
    linfo = validate_args("la_posv", a=a, uplo=uplo)    # lint: LA017
    return linfo
