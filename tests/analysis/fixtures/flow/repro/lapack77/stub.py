"""Substrate stub for the interprocedural flow fixtures.

The path puts this module inside a ``lapack77`` package, so lalint
treats it as substrate: these ``def`` signatures supply the kernel
parameter order that :func:`repro.analysis.flow.summaries.
kernel_effects` matches against the spec intents.  The bodies are
never executed (lalint never imports analysed code).
"""


def gesv(a, b):
    raise NotImplementedError


def getrf(a):
    raise NotImplementedError


def getrs(a, piv, b, trans="N"):
    raise NotImplementedError


def lagge(a, kl=None, ku=None, d=None, iseed=None):
    raise NotImplementedError
