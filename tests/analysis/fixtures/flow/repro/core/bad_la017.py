"""LA017 seeded violation: the driver never forwards ``ipiv`` to
``validate_args``, so the spec's ``optlen`` check for error exit -3
sees ``None`` forever and that documented exit is dead code."""

import numpy as np

from repro.errors import Info, erinfo
from repro.backends.kernels import gesv
from repro.specs import validate_args

__all__ = ["la_gesv"]


def la_gesv(a, b, ipiv=None, info=None):
    srname = "LA_GESV"
    exc = None
    linfo = validate_args("la_gesv", a=a, b=b)      # lint: LA017
    if linfo == 0:
        n = a.shape[0]
        buf = np.zeros(n, dtype=np.intp)
        _, linfo = gesv(a, b)
        if ipiv is not None:
            ipiv[:] = buf
    erinfo(linfo, srname, info, exc=exc)
    return b
