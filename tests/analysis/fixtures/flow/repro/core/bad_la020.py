"""LA020 seeded violation: a factor stage followed by a solve stage
with no ``deadlines.check`` between them, so an armed deadline budget
is only observed at entry, never before the second expensive phase."""

import numpy as np

from repro.errors import Info, erinfo
from repro.backends.kernels import getrf, getrs
from repro.specs import validate_args

__all__ = ["la_gesv"]


def la_gesv(a, b, ipiv=None, info=None):
    srname = "LA_GESV"
    exc = None
    linfo = validate_args("la_gesv", a=a, b=b, ipiv=ipiv)
    if linfo == 0:
        n = a.shape[0]
        buf = np.zeros(n, dtype=np.intp)
        lu, piv, linfo = getrf(a)
        if linfo == 0:
            linfo = getrs(lu, piv, b)               # lint: LA020
        if ipiv is not None:
            ipiv[:] = buf
    erinfo(linfo, srname, info, exc=exc)
    return b
