"""LA020 clean fixture: the factor -> solve transition is guarded by a
``deadlines.check`` checkpoint in the driver body."""

import numpy as np

from repro.errors import Info, erinfo
from repro.backends.kernels import getrf, getrs
from repro.resilience import deadlines
from repro.specs import validate_args

__all__ = ["la_gesv"]


def la_gesv(a, b, ipiv=None, info=None):
    srname = "LA_GESV"
    exc = None
    linfo = validate_args("la_gesv", a=a, b=b, ipiv=ipiv)
    if linfo == 0:
        n = a.shape[0]
        buf = np.zeros(n, dtype=np.intp)
        lu, piv, linfo = getrf(a)
        if linfo == 0:
            deadlines.check(srname, "solve", info)
            linfo = getrs(lu, piv, b)
        if ipiv is not None:
            ipiv[:] = buf
    erinfo(linfo, srname, info, exc=exc)
    return b
