"""LA018 clean fixture: the column slice is copied before the kernel
call, so the two operand slots carry independent storage."""

import numpy as np

from repro.errors import Info, erinfo
from repro.backends.kernels import gesv
from repro.specs import validate_args

__all__ = ["la_gesv"]


def la_gesv(a, b, ipiv=None, info=None):
    srname = "LA_GESV"
    exc = None
    linfo = validate_args("la_gesv", a=a, b=b, ipiv=ipiv)
    if linfo == 0:
        n = a.shape[0]
        buf = np.zeros(n, dtype=np.intp)
        rhs = a[:, :1].copy()
        _, linfo = gesv(a, rhs)
        if ipiv is not None:
            ipiv[:] = buf
    erinfo(linfo, srname, info, exc=exc)
    return b
