"""LA011 fixture: dimension bindings disagree with the spec formulas.

The spec for ``la_gesv`` derives ``n = rows2d(a)`` and requires
``len(ipiv) == n``; this driver binds ``n`` to the column count and
sizes the pivot buffer ``n + 1``.
"""

import numpy as np

from repro.errors import Info, erinfo
from repro.backends.kernels import gesv
from repro.specs import validate_args

__all__ = ["la_gesv"]


def la_gesv(a, b, ipiv=None, info=None):
    srname = "LA_GESV"
    exc = None
    linfo = validate_args("la_gesv", a=a, b=b, ipiv=ipiv)
    if linfo == 0:
        n = a.shape[1]                          # lint: LA011
        buf = np.zeros(n + 1, dtype=np.intp)    # lint: LA011
        _, linfo = gesv(a, b)
        if ipiv is not None:
            ipiv[:] = buf
    erinfo(linfo, srname, info, exc=exc)
    return b
