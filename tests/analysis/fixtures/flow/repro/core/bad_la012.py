"""LA012 fixture: the declared ``ipiv`` output is never written.

The spec marks ``ipiv`` intent(out): a caller passing a pivot buffer
gets it back untouched — the kernel's pivots are silently dropped.
"""

from repro.errors import Info, erinfo
from repro.backends.kernels import gesv
from repro.specs import validate_args

__all__ = ["la_gesv"]


def la_gesv(a, b, ipiv=None, info=None):        # lint: LA012
    srname = "LA_GESV"
    exc = None
    linfo = validate_args("la_gesv", a=a, b=b, ipiv=ipiv)
    if linfo == 0:
        _, linfo = gesv(a, b)
    erinfo(linfo, srname, info, exc=exc)
    return b
