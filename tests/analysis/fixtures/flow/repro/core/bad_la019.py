"""LA019 seeded violation: a scalar dimension lands in ``gesv``'s
written ``b`` slot, so ``dispatch.snapshot_set`` has nothing to capture
and a resilience retry would replay the kernel against mutated state."""

import numpy as np

from repro.errors import Info, erinfo
from repro.backends.kernels import gesv
from repro.specs import validate_args

__all__ = ["la_gesv"]


def la_gesv(a, b, ipiv=None, info=None):
    srname = "LA_GESV"
    exc = None
    linfo = validate_args("la_gesv", a=a, b=b, ipiv=ipiv)
    if linfo == 0:
        n = a.shape[0]
        buf = np.zeros(n, dtype=np.intp)
        _, linfo = gesv(a, n)                       # lint: LA019
        if ipiv is not None:
            ipiv[:] = buf
    erinfo(linfo, srname, info, exc=exc)
    return b
