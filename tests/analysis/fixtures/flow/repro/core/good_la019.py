"""LA019 clean fixture: arrays fill every written kernel slot, and the
non-array in ``lagge``'s written slot is fine because the spec marks
that kernel ``breaker_exempt`` — it is never retried, so the snapshot
contract does not apply."""

import numpy as np

from repro.errors import Info, erinfo
from repro.backends.kernels import gesv, lagge
from repro.specs import validate_args

__all__ = ["la_gesv"]


def la_gesv(a, b, ipiv=None, info=None):
    srname = "LA_GESV"
    exc = None
    linfo = validate_args("la_gesv", a=a, b=b, ipiv=ipiv)
    if linfo == 0:
        n = a.shape[0]
        buf = np.zeros(n, dtype=np.intp)
        lagge(n, d=buf)
        _, linfo = gesv(a, b)
        if ipiv is not None:
            ipiv[:] = buf
    erinfo(linfo, srname, info, exc=exc)
    return b
