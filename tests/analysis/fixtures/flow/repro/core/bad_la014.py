"""LA014 fixture: an in-place store mutates the factored matrix ``a``,
which the ``la_getrs`` spec declares intent(in)."""

from repro.errors import Info, erinfo
from repro.backends.kernels import getrs
from repro.specs import validate_args

__all__ = ["la_getrs"]


def la_getrs(a, ipiv, b, trans="N", info=None):
    srname = "LA_GETRS"
    exc = None
    linfo = validate_args("la_getrs", a=a, ipiv=ipiv, b=b, trans=trans)
    if linfo == 0:
        a[0, 0] = a[0, 0] + 0.0                 # lint: LA014
        linfo = getrs(a, ipiv, b, trans=trans)
    erinfo(linfo, srname, info, exc=exc)
    return b
