"""LA014 clean fixture: only the intent(inout) right-hand side is
updated in place; the factored matrix stays untouched."""

from repro.errors import Info, erinfo
from repro.backends.kernels import getrs
from repro.specs import validate_args

__all__ = ["la_getrs"]


def la_getrs(a, ipiv, b, trans="N", info=None):
    srname = "LA_GETRS"
    exc = None
    linfo = validate_args("la_getrs", a=a, ipiv=ipiv, b=b, trans=trans)
    if linfo == 0:
        xout, linfo = getrs(a, ipiv, b, trans=trans)
        b[:] = xout
    erinfo(linfo, srname, info, exc=exc)
    return b
