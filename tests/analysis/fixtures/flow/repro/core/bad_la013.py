"""LA013 fixture: a hard-coded ``np.float64`` eigenvector buffer
reaches the kernel, silently demoting single-precision inputs."""

import numpy as np

from repro.errors import Info, erinfo
from repro.backends.kernels import stev
from repro.specs import validate_args

__all__ = ["la_stev"]


def la_stev(d, e, z=None, info=None):
    srname = "LA_STEV"
    exc = None
    zout = None
    linfo = validate_args("la_stev", d=d, e=e)
    if linfo == 0:
        n = d.shape[0]
        if z is not None:
            zbuf = z if isinstance(z, np.ndarray) else \
                np.empty((n, n), dtype=np.float64)      # lint: LA013
            linfo = stev(d, e, zbuf, jobz="V")
            zout = zbuf
        else:
            linfo = stev(d, e, jobz="N")
    erinfo(linfo, srname, info, exc=exc)
    return (d, zout) if z is not None else d
