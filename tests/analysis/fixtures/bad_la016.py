"""LA016 fixture: reaching around the resilience APIs into the breaker
registry, resilience policy, deadline arming and chaos-fault table."""

from repro.resilience.breaker import _BREAKERS  # lint: LA016

from repro import faults
from repro.resilience import config, deadlines


def force_close(backend, routine):
    _BREAKERS.pop((backend, routine), None)     # lint: LA016


def crank_retries(n):
    config._RESILIENCE.retries = n              # lint: LA016


def disarm_deadlines():
    deadlines._ARMED = 0                        # lint: LA016


def silence_chaos(routine):
    faults._CHAOS.pop(routine, None)            # lint: LA016
