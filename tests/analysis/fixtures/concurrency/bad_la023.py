"""Seeded LA023 violations: guarded state touched without its lock.

The ``_LAFLOW_GUARDED`` literal is the declarative opt-in for modules
outside the shipped registry: every name it lists must be read and
written with the named lock in the current lockset.
"""

import threading

STATE_LOCK = threading.RLock()

_LAFLOW_GUARDED = {"_TABLE": "STATE_LOCK", "_COUNT": "STATE_LOCK"}

_TABLE: dict = {}
_COUNT = 0


def read_unlocked(key):
    return _TABLE.get(key)  # lint: LA023


def write_unlocked(key, value):
    _TABLE[key] = value  # lint: LA023


def one_armed_join(flag, key):
    # Branch-merge join: the lock is held on only one arm, so the
    # merged lockset after the ``if`` must have dropped it.
    if flag:
        STATE_LOCK.acquire()
    count = _TABLE.get(key)  # lint: LA023
    if flag:
        STATE_LOCK.release()
    return count


def _helper(key):
    return _TABLE.get(key)  # lint: LA023


def unlocked_caller(key):
    # Summary-propagated lockset: the caller holds nothing, so the
    # helper's guarded read (reported at the helper's line) is bare.
    return _helper(key)
