"""Conforming twin of ``bad_la025.py``: one global acquisition order
(A before B everywhere) and re-entrant nesting of the RLock-backed
STATE_LOCK — the locked-API-calls-locked-API shape."""

import threading

STATE_LOCK = threading.RLock()
LOCK_A = threading.Lock()
LOCK_B = threading.Lock()


def reentrant_state_lock():
    with STATE_LOCK:
        with STATE_LOCK:
            return 1


def consistent_order_one():
    with LOCK_A:
        with LOCK_B:
            return 2


def consistent_order_two():
    with LOCK_A:
        with LOCK_B:
            return 3
