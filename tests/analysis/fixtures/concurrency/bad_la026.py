"""Seeded LA026 violations: values derived from thread-local state
stored into module globals and long-lived shared containers."""

import threading

_TLS = threading.local()

_SEEN: dict = {}
_LAST = None


def leak_into_global():
    global _LAST
    _LAST = _TLS.value  # lint: LA026


def leak_into_cache(key):
    _SEEN[key] = getattr(_TLS, "stack", None)  # lint: LA026
