"""Seeded LA025 violations: a lock-order cycle between two plain locks
and a non-re-entrant self-acquisition."""

import threading

LOCK_A = threading.Lock()
LOCK_B = threading.Lock()


def a_then_b():
    with LOCK_A:
        with LOCK_B:  # lint: LA025
            return 1


def b_then_a():
    with LOCK_B:
        with LOCK_A:
            return 2


def self_nest():
    with LOCK_A:
        with LOCK_A:  # lint: LA025
            return 3
