"""Seeded LA024 violations: check-then-act on guarded state split
across two lock regions, plus a dangling atomic-split pragma on a line
the analysis never reaches."""

import threading

STATE_LOCK = threading.RLock()

_LAFLOW_GUARDED = {"_CACHE": "STATE_LOCK"}

_CACHE: dict = {}


def split_lookup_insert(key, value):
    with STATE_LOCK:
        cached = _CACHE.get(key)
    if cached is not None:
        return cached
    with STATE_LOCK:
        _CACHE[key] = value  # lint: LA024
    return value


def _check(key):
    with STATE_LOCK:
        return key in _CACHE


def _act(key, value):
    with STATE_LOCK:
        _CACHE[key] = value  # lint: LA024


def split_across_helpers(key, value):
    # Interprocedural split: the check and the act each lock correctly,
    # but the composition is not atomic (reported at the act's line).
    if not _check(key):
        _act(key, value)


def dangling_pragma(key):
    # laflow: atomic-split — suppresses nothing; no guarded access on this line  # lint: LA024
    with STATE_LOCK:
        return _CACHE.get(key)
