"""Conforming twin of ``bad_la023.py``: every guarded access holds the
lock — lexically, across branch joins, through an acquire/release pair,
via a summary-propagated caller lockset, or under a justified
benign-race pragma."""

import threading

STATE_LOCK = threading.RLock()

_LAFLOW_GUARDED = {"_TABLE": "STATE_LOCK", "_COUNT": "STATE_LOCK"}

_TABLE: dict = {}
_COUNT = 0


def read_locked(key):
    with STATE_LOCK:
        return _TABLE.get(key)


def write_locked(key, value):
    global _COUNT
    with STATE_LOCK:
        _TABLE[key] = value
        _COUNT += 1


def both_arms(flag, key):
    # The lock is in the lockset on *both* arms, so the merge keeps it.
    if flag:
        STATE_LOCK.acquire()
    else:
        STATE_LOCK.acquire()
    value = _TABLE.get(key)
    STATE_LOCK.release()
    return value


def acquire_release(key):
    STATE_LOCK.acquire()
    value = _TABLE.get(key)
    STATE_LOCK.release()
    return value


def _helper(key):
    return _TABLE.get(key)


def locked_caller(key):
    # Summary-propagated lockset: the helper relies on — and inherits —
    # the caller's lock at replay time.
    with STATE_LOCK:
        return _helper(key)


def fast_path(key):
    return key in _TABLE  # laflow: benign-race — advisory membership probe; callers re-check under the lock
