"""Conforming twin of ``bad_la024.py``: the check and the act share one
lock region, read-modify-write stays single-statement, and the one
deliberate split carries a justified, load-bearing pragma."""

import threading

STATE_LOCK = threading.RLock()

_LAFLOW_GUARDED = {"_CACHE": "STATE_LOCK"}

_CACHE: dict = {}


def atomic_lookup_insert(key, value):
    with STATE_LOCK:
        cached = _CACHE.get(key)
        if cached is None:
            cached = _CACHE[key] = value
    return cached


def counter_bump(key):
    with STATE_LOCK:
        _CACHE[key] = _CACHE.get(key, 0) + 1


def justified_split(key, value):
    with STATE_LOCK:
        cached = _CACHE.get(key)  # laflow: atomic-split — recomputation between regions is idempotent
    if cached is not None:
        return cached
    with STATE_LOCK:
        _CACHE[key] = value
    return value
