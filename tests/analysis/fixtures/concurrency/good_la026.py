"""Conforming twin of ``bad_la026.py``: thread-local state stays on its
thread — mutated in place, copied into locals, summarized by value —
and never parked in a module-level container."""

import threading

_TLS = threading.local()


def push(value):
    stack = getattr(_TLS, "stack", None)
    if stack is None:
        stack = _TLS.stack = []
    stack.append(value)
    return len(stack)


def snapshot():
    # Copying *out of* thread-local state into a local is fine; only
    # stores into module-level containers leak across threads.
    frames = getattr(_TLS, "stack", None)
    return list(frames or ())
