"""Seeded LA004 violations: guard and validation after the substrate
call."""

from repro.errors import erinfo
from repro.backends.kernels import gesv
from repro.core.auxmod import driver_guard


def la_gesv(a, b, info=None):
    srname = "LA_GESV"
    exc = None
    _, linfo = gesv(a, b)
    if linfo == 0:
        linfo, exc = driver_guard(srname, (1, a), (2, b))   # lint: LA004
    if a.ndim != 2:
        linfo = -1                              # lint: LA004
    erinfo(linfo, srname, info, exc=exc)
    return b
