"""LA021 clean fixture: batch work goes through the generated wrappers
and one amortized ``validate_batch`` pass — no per-problem ladders, no
hand-written ``batch_*`` defs."""

from repro.batch import BatchInfo, batch_gesv, make_batched
from repro.specs import SPECS, validate_batch


def solve_stack(a, b):
    info = BatchInfo()
    x = batch_gesv(a, b, info=info)
    return x, info.codes()


def prevalidate(a, b):
    return validate_batch(SPECS["la_gesv"], {"a": a, "b": b})


def derive_another():
    return make_batched(SPECS["la_posv"])
