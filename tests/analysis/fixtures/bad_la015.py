"""LA015 fixture: reaching around the designated setters into the
process-global policy/backend/blocking state."""

from repro.policy import _POLICY                # lint: LA015

from repro import backends, config


def force_propagate():
    _POLICY.nonfinite = "propagate"             # lint: LA015


def flip_backend(name):
    backends._SELECTED = name                   # lint: LA015


def tune(nb):
    config._BLOCK_SIZES["getrf"] = nb           # lint: LA015
