"""Seeded LA021 violations: a hand-written ``batch_*`` wrapper that
shadows the generated family, plus per-problem spec-engine validation
ladders inside loops (every other rule must stay quiet — the module
defines no ``la_*`` drivers)."""

import numpy as np

from repro.specs import SPECS, validate, validate_args


def batch_gesv(a, b):                                   # lint: LA021
    codes = np.zeros(a.shape[0], dtype=np.int64)
    for k in range(a.shape[0]):
        codes[k] = validate_args("la_gesv", a=a[k], b=b[k])  # lint: LA021
    return codes


def screen_stack_by_hand(problems):
    spec = SPECS["la_posv"]
    out = []
    while problems:
        bound = problems.pop()
        out.append(validate(spec, bound))               # lint: LA021
    return out
