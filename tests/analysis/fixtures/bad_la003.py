"""Seeded LA003 violations: missing info, bad default, info not
threaded."""

from repro.errors import erinfo


def la_gesv(a, b):                              # lint: LA003
    erinfo(0, "LA_GESV", None)
    return b


def la_posv(a, b, info=0):                      # lint: LA003
    erinfo(0, "LA_POSV", info)
    return b


def la_ptsv(d, e, b, info=None):                # lint: LA003
    erinfo(0, "LA_PTSV", None)
    return b
