"""Seeded LA002 violations: position drift in codes, check helpers,
driver_guard tuples, and the shared error-exit table."""

from repro.errors import erinfo
from repro.core.auxmod import check_rhs, check_square, driver_guard, lsame

ERROR_EXIT_CODES = {
    "la_posv": {
        "b": -3,                                # lint: LA002
        "nosuch": -9,                           # lint: LA002
    },
}


def la_posv(a, b, uplo="U", info=None):
    srname = "LA_POSV"
    linfo = 0
    exc = None
    if check_square(a, 2):                      # lint: LA002
        linfo = -1
    elif check_rhs(a.shape[0], b, 2):
        linfo = -2
    elif not lsame(uplo, "U"):
        linfo = -5                              # lint: LA002
    if linfo == 0:
        linfo, exc = driver_guard(srname, (1, a), (3, b))   # lint: LA002
    erinfo(linfo, srname, info, exc=exc)
    return b
