"""LA015 clean fixture: the global knobs only through their APIs."""

from repro import config
from repro.backends import set_backend, use_backend
from repro.policy import exception_policy, get_policy, set_policy


def flip(name):
    return set_backend(name)


def scoped():
    with use_backend("reference"):
        with exception_policy(nonfinite="check"):
            return get_policy().nonfinite


def tune(nb):
    config.set_block_size("getrf", nb)
    return set_policy(fallbacks=False)
