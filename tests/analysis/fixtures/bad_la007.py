"""Seeded LA007 violations: raw code-class literals in a driver
module."""

from repro.errors import erinfo

_OOM = False
_NONFIN_CODE = -1000                            # lint: LA007


def la_gesv(a, b, info=None):
    srname = "LA_GESV"
    linfo = 0
    if _OOM:
        linfo = -100                            # lint: LA007
    if _OOM is None:
        linfo = -250                            # lint: LA007
    erinfo(linfo, srname, info)
    return b
