"""Seeded LA005 violations: stale export and missing driver."""

from repro.errors import erinfo

__all__ = ["la_gesv", "la_nothere"]             # lint: LA005


def la_gesv(a, b, info=None):
    erinfo(0, "LA_GESV", info)
    return b


def la_posv(a, b, info=None):                   # lint: LA005
    erinfo(0, "LA_POSV", info)
    return b
