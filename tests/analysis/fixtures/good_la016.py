"""LA016 clean fixture: the resilience state only through its APIs."""

from repro import deadline, healthcheck
from repro.faults import chaos, chaos_clear
from repro.resilience import (breaker_states, get_resilience,
                              reset_breakers, resilience_policy,
                              set_resilience)


def tighten():
    return set_resilience(retries=0, breaker_threshold=2)


def scoped_solve(run):
    with resilience_policy(breaker_cooldown=0.1):
        with deadline(5.0):
            return run()


def drill(run):
    with chaos("gesv", fail_next=2):
        run()
    chaos_clear()
    report = healthcheck()
    reset_breakers()
    return report, breaker_states(), get_resilience().retries
