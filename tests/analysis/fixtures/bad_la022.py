"""Seeded LA022 violations: a hand-written structure→driver routing
table (dict literal) and an if/elif dispatch ladder over structure
labels (every other rule must stay quiet — the module defines no
``la_*`` drivers and runs no spec-engine validators in loops)."""

ROUTES = {                                              # lint: LA022
    "spd": "la_posv",
    "symmetric": "la_sysv",
    "general": "la_gesv",
}


def pick_driver(label, a, b):
    if label == "spd":                                  # lint: LA022
        return "la_posv"
    elif label in ("symmetric", "hermitian"):
        return "la_sysv"
    else:
        return "la_gesv"
