"""LA022 clean fixture: routing goes through the spec-derived table,
label→label refinement logic is fine anywhere, and kernel-keyed calling
conventions (the ``_FAMILIES``-style residue) are not routing."""

from repro.specs.routing import route


def front_door(kind, label, iscomplex):
    """Derived routing: allowed everywhere."""
    return route(kind, label, iscomplex).name


def eig_label(label, symmetric, hermitian, iscomplex):
    """Label→label refinement without driver names: allowed."""
    if iscomplex and hermitian:
        return "hermitian"
    if symmetric:
        return "symmetric"
    return label


def run_kernel(spec, conventions, operands):
    """Kernel-keyed calling conventions: keys are kernel stems, not
    structure labels."""
    table = {"gesv": conventions.gesv, "posv": conventions.posv}
    return table[spec.kernel](*operands)
