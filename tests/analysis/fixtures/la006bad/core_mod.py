"""Seeded LA006 violations: unresolved substrate import and a real
driver with no complex partner."""

from repro.errors import erinfo
from ..lapack77 import sysv, nosuchroutine      # lint: LA006


def la_sysv(a, b, info=None):                   # lint: LA006
    _, linfo = sysv(a, b)
    erinfo(linfo, "LA_SYSV", info)
    return b
