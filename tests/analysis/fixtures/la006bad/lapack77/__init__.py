"""Substrate stub for the LA006 fixture tree."""


def sysv(a, b):
    return None, 0
