"""The graceful-degradation ladder: LA_POSV -> symmetric-indefinite,
LA_GESV / LA_GBSV -> expert equilibrate-and-refine, with every taken
fallback observable on the Info handle and every disabled/failed
fallback preserving the original ERINFO outcome."""

import warnings

import numpy as np
import pytest

from repro import Info, exception_policy, la_gesv, la_posv, set_policy
from repro.core import la_gbsv
from repro.errors import (DriverFallbackWarning, NotPositiveDefinite,
                          SingularMatrix)
from repro.testing import faultinject as fi

from ..conftest import well_conditioned


@pytest.fixture(autouse=True)
def _clean_slate():
    yield
    fi.clear()
    set_policy(nonfinite="propagate", rcond_guard="silent", fallbacks=False)


def _band(n=5, kl=1, ku=1):
    ab = np.zeros((2 * kl + ku + 1, n))
    ab[kl + ku, :] = 4.0
    ab[kl + ku - 1, 1:] = 1.0
    ab[kl + ku + 1, :-1] = 1.0
    return ab


def _band_full(ab, kl, ku):
    n = ab.shape[1]
    a = np.zeros((n, n))
    for j in range(n):
        for i in range(max(0, j - ku), min(n, j + kl + 1)):
            a[i, j] = ab[kl + ku + i - j, j]
    return a


class TestPosvFallback:
    def test_indefinite_solved_via_sysv(self):
        # Symmetric, indefinite (eigenvalues 3 and -1): Cholesky fails,
        # the Bunch-Kaufman retry succeeds.
        a = np.array([[1.0, 2.0], [2.0, 1.0]])
        b = np.array([3.0, 3.0])
        info = Info()
        with exception_policy(fallbacks=True):
            with pytest.warns(DriverFallbackWarning):
                out = la_posv(a.copy(), b, info=info)
        assert out is b
        np.testing.assert_allclose(
            b, np.linalg.solve(a, np.array([3.0, 3.0])), rtol=1e-12)
        assert info.value == 0
        assert info.fallback == "LA_SYSV"

    def test_complex_indefinite_goes_through_hesv(self):
        a = np.array([[1.0, 2.0 + 1.0j], [2.0 - 1.0j, 1.0]])
        x_true = np.array([1.0 + 0.5j, -2.0j])
        b = a @ x_true
        info = Info()
        with exception_policy(fallbacks=True):
            with pytest.warns(DriverFallbackWarning):
                la_posv(a.copy(), b, info=info)
        np.testing.assert_allclose(b, x_true, rtol=1e-12)
        assert info.fallback == "LA_HESV"

    def test_disabled_by_default(self):
        a = np.array([[1.0, 2.0], [2.0, 1.0]])
        with pytest.raises(NotPositiveDefinite) as e:
            la_posv(a, np.ones(2))
        assert e.value.info == 2  # the order-2 leading minor is negative

    def test_singular_matrix_fails_both_rungs(self):
        # Zero matrix: sytrf cannot rescue it either — the original
        # NotPositiveDefinite must escape, not a fallback artefact.
        a = np.zeros((2, 2))
        with exception_policy(fallbacks=True):
            with pytest.raises(NotPositiveDefinite):
                la_posv(a, np.ones(2))

    def test_true_spd_never_takes_the_ladder(self, rng):
        from ..conftest import spd_matrix
        a = spd_matrix(rng, 6, np.float64)
        info = Info()
        with exception_policy(fallbacks=True):
            with warnings.catch_warnings():
                warnings.simplefilter("error", DriverFallbackWarning)
                la_posv(a, np.ones(6), info=info)
        assert info.value == 0
        assert info.fallback is None


class TestGesvFallback:
    def test_injected_pivot_failure_recovers_via_gesvx(self, rng):
        a = well_conditioned(rng, 5, np.float64)
        x_true = np.linspace(1, 2, 5)
        b = a @ x_true
        info = Info()
        # count=1: the primary factorization hits the zero pivot; the
        # expert retry refactors cleanly.
        with fi.injected("getf2", zero_pivot=1, count=1):
            with exception_policy(fallbacks=True):
                with pytest.warns(DriverFallbackWarning):
                    la_gesv(a.copy(), b, info=info)
        np.testing.assert_allclose(b, x_true, rtol=1e-8)
        assert info.value == 0
        assert info.fallback == "LA_GESVX(FACT='E')"
        assert info.rcond is not None and info.rcond > 0

    def test_persistent_fault_escapes_as_singular(self, rng):
        a = well_conditioned(rng, 5, np.float64)
        with fi.injected("getf2", zero_pivot=1):
            with exception_policy(fallbacks=True):
                with pytest.raises(SingularMatrix) as e:
                    la_gesv(a.copy(), np.ones(5))
        assert e.value.info == 2

    def test_genuinely_singular_escapes(self):
        with exception_policy(fallbacks=True):
            with pytest.raises(SingularMatrix):
                la_gesv(np.ones((3, 3)), np.ones(3))

    def test_disabled_by_default(self, rng):
        a = well_conditioned(rng, 4, np.float64)
        with fi.injected("getf2", zero_pivot=0, count=1):
            with pytest.raises(SingularMatrix):
                la_gesv(a, np.ones(4))


class TestGbsvFallback:
    def test_injected_pivot_failure_recovers_via_gbsvx(self):
        ab = _band()
        kl = 1
        a_full = _band_full(ab, kl, 1)
        x_true = np.linspace(-1, 1, 5)
        b = a_full @ x_true
        info = Info()
        with fi.injected("gbtrf", zero_pivot=1, count=1):
            with exception_policy(fallbacks=True):
                with pytest.warns(DriverFallbackWarning):
                    la_gbsv(ab, b, kl=kl, info=info)
        np.testing.assert_allclose(b, x_true, rtol=1e-8, atol=1e-12)
        assert info.value == 0
        assert info.fallback == "LA_GBSVX"

    def test_persistent_fault_escapes(self):
        with fi.injected("gbtrf", zero_pivot=1):
            with exception_policy(fallbacks=True):
                with pytest.raises(SingularMatrix):
                    la_gbsv(_band(), np.ones(5), kl=1)


class TestErinfoContractOfFallbacks:
    """Satellite (d): every fallback path either reflects the taken
    rung on info, or — when disabled — reproduces the primary error."""

    CASES = [
        ("posv", lambda: (np.array([[1.0, 2.0], [2.0, 1.0]]), np.ones(2)),
         None, NotPositiveDefinite, "LA_SYSV"),
        ("gesv", lambda: (np.eye(3) + 0.1, np.ones(3)),
         ("getf2", 0), SingularMatrix, "LA_GESVX(FACT='E')"),
        ("gbsv", lambda: (_band(), np.ones(5)),
         ("gbtrf", 0), SingularMatrix, "LA_GBSVX"),
    ]

    @pytest.mark.parametrize("name,build,fault,err,via", CASES,
                             ids=[c[0] for c in CASES])
    def test_taken_vs_disabled(self, name, build, fault, err, via):
        def run(info):
            a, b = build()
            if name == "posv":
                return la_posv(a, b, info=info)
            if name == "gesv":
                return la_gesv(a, b, info=info)
            return la_gbsv(a, b, kl=1, info=info)

        if fault is not None:
            fi.install(fault[0], zero_pivot=fault[1], count=1)
        info = Info()
        with exception_policy(fallbacks=True):
            with pytest.warns(DriverFallbackWarning):
                run(info)
        assert info.fallback == via
        assert info.value in (0, build()[1].shape[0] + 1)

        fi.clear()
        if fault is not None:
            fi.install(fault[0], zero_pivot=fault[1], count=1)
        with pytest.raises(err):
            run(None)
