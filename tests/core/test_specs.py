"""Spec-consistency suite for the declarative driver-spec layer.

Cross-checks the registry (:mod:`repro.specs`) against every layer that
is derived from it: the live driver signatures, the frozen pre-refactor
error-exit table, the backend kernel pool, and the validation engine
itself.
"""

import inspect
import json
import os

import numpy as np
import pytest

import repro.core as core
from repro.backends import bound_kernel, driver_kernel, get_backend
from repro.specs import SPECS, error_exit_codes, validate_args
from repro.testing.error_exits import ERROR_EXIT_CODES

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURE = os.path.join(HERE, "fixtures", "error_exit_codes_v0.json")

#: ``la_*`` exports that are not drivers (workspace-size queries).
NON_DRIVERS = {"la_ws_gels", "la_ws_gelss"}


def _core_drivers():
    return sorted(n for n in core.__all__
                  if n.startswith("la_") and n not in NON_DRIVERS)


class TestCoverage:
    def test_every_core_driver_has_a_spec(self):
        missing = [n for n in _core_drivers() if n not in SPECS]
        assert missing == []

    def test_every_spec_names_a_core_driver(self):
        ghosts = sorted(set(SPECS) - set(_core_drivers()))
        assert ghosts == []

    def test_registry_covers_all_77_drivers(self):
        assert len(SPECS) == 77


class TestSignatures:
    @pytest.mark.parametrize("name", sorted(SPECS))
    def test_positions_match_live_signature(self, name):
        spec = SPECS[name]
        func = getattr(core, name)
        params = [p for p in inspect.signature(func).parameters
                  if p not in ("args", "kwargs", "backend")]
        positions = {p: i + 1 for i, p in enumerate(params)}
        for a in spec.args:
            assert a.name in positions, \
                f"{name}: spec argument {a.name!r} not in signature"
            assert positions[a.name] == a.position, \
                f"{name}: {a.name} declared at {a.position}, " \
                f"signature has it at {positions[a.name]}"

    @pytest.mark.parametrize("name", sorted(SPECS))
    def test_check_codes_point_at_declared_positions(self, name):
        spec = SPECS[name]
        declared = {a.position for a in spec.args}
        for c in spec.checks:
            assert -c.code in declared, \
                f"{name}: check code {c.code} names no argument"


class TestErrorExitTable:
    def test_derived_table_matches_frozen_fixture_bytes(self):
        derived = json.dumps(error_exit_codes(), indent=2,
                             sort_keys=True) + "\n"
        with open(FIXTURE, "r", encoding="utf-8") as fh:
            assert fh.read() == derived

    def test_testing_module_reexports_the_derived_view(self):
        assert ERROR_EXIT_CODES == error_exit_codes()


class TestKernelBindings:
    def test_every_spec_kernel_resolves_in_reference(self):
        reference = get_backend("reference")
        for name, spec in SPECS.items():
            assert spec.kernel is not None, name
            assert spec.kernel in reference.routines(), \
                f"{name}: kernel {spec.kernel!r} not in reference"

    def test_reference_only_flags_are_honest(self):
        try:
            accelerated = get_backend("accelerated")
        except ValueError:
            pytest.skip("accelerated backend not registered")
        for name, spec in SPECS.items():
            served = spec.kernel in accelerated.routines()
            assert served != spec.reference_only, \
                f"{name}: reference_only={spec.reference_only} but " \
                f"accelerated {'serves' if served else 'lacks'} " \
                f"{spec.kernel!r}"

    def test_bound_kernel_and_driver_kernel(self):
        assert bound_kernel("la_gesv") == SPECS["la_gesv"].kernel
        kernel = driver_kernel("la_gesv", np.float64)
        assert callable(kernel)
        with pytest.raises(LookupError):
            bound_kernel("la_nosuchdriver")


class TestEngineSmoke:
    """The engine reproduces the table codes for seeded violations."""

    def test_gesv_ladder(self):
        codes = ERROR_EXIT_CODES["la_gesv"]
        assert validate_args("la_gesv", a=np.ones((3, 4)), b=np.ones(3),
                             ipiv=None) == codes["a"]
        assert validate_args("la_gesv", a=np.eye(3), b=np.ones(4),
                             ipiv=None) == codes["b"]
        assert validate_args("la_gesv", a=np.eye(3), b=np.ones(3),
                             ipiv=np.zeros(2, np.int64)) == codes["ipiv"]
        assert validate_args("la_gesv", a=np.eye(3), b=np.ones(3),
                             ipiv=None) == 0

    def test_first_failure_wins(self):
        codes = ERROR_EXIT_CODES["la_gesv"]
        assert validate_args("la_gesv", a=np.ones((3, 4)), b=np.ones(9),
                             ipiv=np.zeros(1, np.int64)) == codes["a"]

    def test_flag_domain(self):
        codes = ERROR_EXIT_CODES["la_posv"]
        assert validate_args("la_posv", a=np.eye(3), b=np.ones(3),
                             uplo="Q") == codes["uplo"]
        assert validate_args("la_posv", a=np.eye(3), b=np.ones(3),
                             uplo="L") == 0
