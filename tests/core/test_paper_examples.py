"""The paper's worked examples, reproduced verbatim.

* Fig. 1 — Example 1: the F77 generic interface (explicit N/NRHS/LDA…),
* Fig. 2 — Example 2: the F90 interface (``CALL LA_GESV(A, B)``),
* Fig. 3 — Example 3: both interfaces on the same N=500 system
  (the timing itself is benchmarks/test_fig3_overhead.py),
* Appendix E Examples 1–2: the fixed 5×5 system with its printed
  solution, L/U factors and pivot sequence.
"""

import numpy as np
import pytest

from repro import Info, f77, la_gesv

# The Appendix E matrices.
A_PAPER = np.array([
    [0., 2., 3., 5., 4.],
    [1., 0., 5., 6., 6.],
    [7., 6., 8., 0., 5.],
    [4., 6., 0., 3., 9.],
    [5., 9., 0., 0., 8.],
])
B_PAPER = np.array([
    [14., 28., 42.],
    [18., 36., 54.],
    [26., 52., 78.],
    [22., 44., 66.],
    [22., 44., 66.],
])

# Appendix E Example 2 printed outputs (7 significant digits, SP run).
IPIV_PAPER_1BASED = np.array([3, 5, 3, 4, 5])
L_PAPER = np.array([
    [1.0000000, 0, 0, 0, 0],
    [0.7142857, 1.0000000, 0, 0, 0],
    [0.0000000, 0.4242424, 1.0000000, 0, 0],
    [0.5714286, 0.5454544, -0.2681566, 1.0000000, 0],
    [0.1428571, -0.1818182, 0.5195531, 0.7837837, 1.0000000],
])
U_PAPER = np.array([
    [7.0000000, 6.0000000, 8.0000000, 0.0000000, 5.0000000],
    [0, 4.7142859, -5.7142859, 0.0000000, 4.4285712],
    [0, 0, 5.4242425, 5.0000000, 2.1212122],
    [0, 0, 0, 4.3407826, 4.2960901],
    [0, 0, 0, 0, 1.6216215],
])


def test_fig1_f77_interface():
    """Paper Fig. 1: the F77_LAPACK generic interface program."""
    rng = np.random.default_rng(19980328)
    n, nrhs = 5, 2
    a = rng.random((n, n))
    b = np.column_stack([a.sum(axis=1) * j for j in (1, 2)])
    lda = ldb = n
    ipiv = np.zeros(n, dtype=np.int64)
    info = f77.la_gesv(n, nrhs, a, lda, ipiv, b, ldb)
    assert info == 0
    # B(:, j) = sum(A, dim=2)*j  ⇒  X(:, j) = j.
    np.testing.assert_allclose(b[:, 0], 1.0, atol=1e-12)
    np.testing.assert_allclose(b[:, 1], 2.0, atol=1e-12)


def test_fig2_f90_interface():
    """Paper Fig. 2: the same computation via CALL LA_GESV(A, B)."""
    rng = np.random.default_rng(19980328)
    n, nrhs = 5, 2
    a = rng.random((n, n))
    b = np.column_stack([a.sum(axis=1) * j for j in (1, 2)])
    la_gesv(a, b)
    np.testing.assert_allclose(b[:, 0], 1.0, atol=1e-12)
    np.testing.assert_allclose(b[:, 1], 2.0, atol=1e-12)


def test_fig3_both_interfaces_same_answer():
    """Paper Fig. 3 computes the same solve through both modules; here we
    verify both paths agree bit-for-bit (the timing comparison is the
    FIG3 benchmark)."""
    rng = np.random.default_rng(3)
    n, nrhs = 60, 2
    a0 = rng.random((n, n))
    b0 = np.column_stack([a0.sum(axis=1) * j for j in (1, 2)])
    a1, b1 = a0.copy(), b0.copy()
    ipiv = np.zeros(n, dtype=np.int64)
    info = f77.la_gesv(n, nrhs, a1, n, ipiv, b1, n)
    assert info == 0
    a2, b2 = a0.copy(), b0.copy()
    la_gesv(a2, b2)
    np.testing.assert_array_equal(b1, b2)
    np.testing.assert_array_equal(a1, a2)


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_appendix_e_example1(dtype):
    """Appendix E Example 1: CALL LA_GESV(A, B) on the fixed system;
    the printed solution is X = [1, 2, 3] per column (to SP accuracy)."""
    a = A_PAPER.astype(dtype)
    b = B_PAPER.astype(dtype)
    la_gesv(a, b)
    tol = 5e-6 if dtype == np.float32 else 1e-12
    np.testing.assert_allclose(b[:, 0], 1.0, atol=tol)
    np.testing.assert_allclose(b[:, 1], 2.0, atol=2 * tol)
    np.testing.assert_allclose(b[:, 2], 3.0, atol=3 * tol)


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_appendix_e_example2(dtype):
    """Appendix E Example 2: CALL LA_GESV(A, B(:,1), IPIV, INFO) — checks
    the printed IPIV, L, U and solution."""
    a = A_PAPER.astype(dtype)
    b = B_PAPER[:, 0].astype(dtype).copy()
    ipiv = np.zeros(5, dtype=np.int64)
    info = Info()
    la_gesv(a, b, ipiv=ipiv, info=info)
    assert info.value == 0
    # The paper prints 1-based pivots [3, 5, 3, 4, 5].
    np.testing.assert_array_equal(ipiv + 1, IPIV_PAPER_1BASED)
    # Factors to the paper's 7 printed digits.
    l = np.tril(a, -1) + np.eye(5)
    u = np.triu(a)
    np.testing.assert_allclose(l, L_PAPER, atol=5e-7)
    np.testing.assert_allclose(u, U_PAPER, atol=5e-6)
    # Solution x = ones.
    tol = 5e-6 if dtype == np.float32 else 1e-12
    np.testing.assert_allclose(b, 1.0, atol=tol)


def test_appendix_e_eps_value():
    """The paper's runs print eps = 1.1921e-07 — single precision."""
    from repro.lapack77 import lamch
    assert abs(lamch("E", np.float32) - 1.1920929e-07) < 1e-13
