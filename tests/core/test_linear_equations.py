"""LAPACK90 linear-equation drivers: generic dispatch, optional args,
INFO semantics."""

import numpy as np
import pytest

from repro import (Info, IllegalArgument, NotPositiveDefinite,
                   SingularMatrix)
from repro.core import (la_gbsv, la_gesv, la_gtsv, la_hesv, la_hpsv,
                        la_pbsv, la_posv, la_ppsv, la_ptsv, la_spsv,
                        la_sysv)
from repro.storage import full_to_band, full_to_sym_band, pack

from ..conftest import (rand_matrix, rand_vector, spd_matrix, tol_for,
                        well_conditioned)


class TestLaGesv:
    def test_matrix_rhs(self, rng, dtype):
        n, nrhs = 12, 3
        a0 = well_conditioned(rng, n, dtype)
        x_true = rand_matrix(rng, n, nrhs, dtype)
        b = (a0 @ x_true).astype(dtype)
        a = a0.copy()
        out = la_gesv(a, b)
        assert out is b
        np.testing.assert_allclose(b, x_true, rtol=tol_for(dtype, 1e4),
                                   atol=tol_for(dtype, 1e4))

    def test_vector_rhs_generic_shape(self, rng, dtype):
        # The paper's xGESV1_F90 resolution: B of shape (:).
        n = 9
        a0 = well_conditioned(rng, n, dtype)
        x_true = rand_vector(rng, n, dtype)
        b = (a0 @ x_true).astype(dtype)
        la_gesv(a0.copy(), b)
        np.testing.assert_allclose(b, x_true, rtol=tol_for(dtype, 1e4),
                                   atol=tol_for(dtype, 1e4))

    def test_optional_ipiv_filled(self, rng):
        n = 6
        a = well_conditioned(rng, n, np.float64)
        b = rand_vector(rng, n, np.float64)
        ipiv = np.zeros(n, dtype=np.int64)
        la_gesv(a, b, ipiv=ipiv)
        assert np.all(ipiv >= np.arange(n) - 0)  # partial pivoting: >= row

    def test_a_overwritten_by_lu(self, rng):
        n = 5
        a0 = well_conditioned(rng, n, np.float64)
        a = a0.copy()
        b = rand_vector(rng, n, np.float64)
        ipiv = np.zeros(n, dtype=np.int64)
        la_gesv(a, b, ipiv=ipiv)
        from ..lapack77.test_lu import reconstruct_lu
        rec = reconstruct_lu(a, ipiv, n, n)
        np.testing.assert_allclose(rec, a0, atol=1e-10)

    def test_info_reports_singular(self):
        a = np.ones((3, 3))
        b = np.ones(3)
        info = Info()
        la_gesv(a, b, info=info)
        assert info.value > 0

    def test_raises_singular_without_info(self):
        with pytest.raises(SingularMatrix):
            la_gesv(np.ones((3, 3)), np.ones(3))

    def test_bad_args_info_codes(self):
        info = Info()
        la_gesv(np.ones((2, 3)), np.ones(2), info=info)
        assert info == -1
        la_gesv(np.eye(3), np.ones(4), info=info)
        assert info == -2
        la_gesv(np.eye(3), np.ones(3), ipiv=np.zeros(1, np.int64),
                info=info)
        assert info == -3

    def test_bad_args_raise_without_info(self):
        with pytest.raises(IllegalArgument) as e:
            la_gesv(np.ones((2, 3)), np.ones(2))
        assert e.value.info == -1

    def test_integer_input_rejected_cleanly(self):
        # Integer arrays are not a LAPACK type; in-place factorization
        # cannot proceed.  numpy raises a casting error — acceptable
        # behaviour documented here.
        a = np.arange(9).reshape(3, 3) + np.eye(3, dtype=int) * 10
        b = np.ones(3)
        with pytest.raises(Exception):
            la_gesv(a, b)


@pytest.mark.parametrize("uplo", ["U", "L"])
def test_la_posv(rng, dtype, uplo):
    n = 10
    a0 = spd_matrix(rng, n, dtype)
    x_true = rand_vector(rng, n, dtype)
    b = (a0 @ x_true).astype(dtype)
    la_posv(a0.copy(), b, uplo=uplo)
    np.testing.assert_allclose(b, x_true, rtol=tol_for(dtype, 1e4),
                               atol=tol_for(dtype, 1e4))


def test_la_posv_not_pd():
    a = np.eye(3)
    a[1, 1] = -1
    info = Info()
    la_posv(a, np.ones(3), info=info)
    assert info.value == 2
    with pytest.raises(NotPositiveDefinite):
        la_posv(np.diag([1.0, -1.0]), np.ones(2))


def test_la_gbsv_default_kl(rng, dtype):
    n, kl, ku = 15, 2, 2
    a = rand_matrix(rng, n, n, dtype)
    for i in range(n):
        for j in range(n):
            if abs(i - j) > kl:
                a[i, j] = 0
    a[np.diag_indices(n)] += 4
    ab = np.zeros((2 * kl + ku + 1, n), dtype=dtype)
    ab[kl:, :] = full_to_band(a, kl, ku)
    x_true = rand_vector(rng, n, dtype)
    b = (a @ x_true).astype(dtype)
    la_gbsv(ab, b)  # kl inferred: (rows-1)//3 = 2
    np.testing.assert_allclose(b, x_true, rtol=tol_for(dtype, 1e4),
                               atol=tol_for(dtype, 1e4))


def test_la_gtsv(rng, dtype):
    n = 14
    dl = rand_vector(rng, n - 1, dtype)
    d = rand_vector(rng, n, dtype) + 4
    du = rand_vector(rng, n - 1, dtype)
    a = np.diag(d) + np.diag(dl, -1) + np.diag(du, 1)
    x_true = rand_vector(rng, n, dtype)
    b = (a @ x_true).astype(dtype)
    la_gtsv(dl, d, du, b)
    np.testing.assert_allclose(b, x_true, rtol=tol_for(dtype, 1e4),
                               atol=tol_for(dtype, 1e4))


def test_la_gtsv_length_mismatch():
    info = Info()
    la_gtsv(np.ones(3), np.ones(3), np.ones(2), np.ones(3), info=info)
    assert info == -1


@pytest.mark.parametrize("uplo", ["U", "L"])
def test_la_ppsv(rng, dtype, uplo):
    n = 8
    a = spd_matrix(rng, n, dtype)
    ap = pack(a, uplo=uplo)
    x_true = rand_vector(rng, n, dtype)
    b = (a @ x_true).astype(dtype)
    la_ppsv(ap, b, uplo=uplo)
    np.testing.assert_allclose(b, x_true, rtol=tol_for(dtype, 1e4),
                               atol=tol_for(dtype, 1e4))


def test_la_ppsv_bad_packed_length():
    info = Info()
    la_ppsv(np.ones(5), np.ones(3), info=info)  # needs 6 for n=3
    assert info == -1


@pytest.mark.parametrize("uplo", ["U", "L"])
def test_la_pbsv(rng, dtype, uplo):
    n, kd = 12, 2
    a = spd_matrix(rng, n, dtype)
    for i in range(n):
        for j in range(n):
            if abs(i - j) > kd:
                a[i, j] = 0
    a[np.diag_indices(n)] += n
    ab = full_to_sym_band(a, kd, uplo=uplo)
    x_true = rand_vector(rng, n, dtype)
    b = (a @ x_true).astype(dtype)
    la_pbsv(ab, b, uplo=uplo)
    np.testing.assert_allclose(b, x_true, rtol=tol_for(dtype, 1e4),
                               atol=tol_for(dtype, 1e4))


def test_la_ptsv(rng, dtype):
    n = 10
    e = rand_vector(rng, n - 1, dtype)
    d = np.abs(rand_vector(rng, n, np.float64)) + 3
    a = np.diag(d.astype(np.result_type(dtype, np.float64))) \
        + np.diag(e, -1) + np.diag(np.conj(e), 1)
    x_true = rand_vector(rng, n, dtype)
    b = (a @ x_true).astype(np.result_type(dtype, np.float64))
    la_ptsv(d, e, b)
    np.testing.assert_allclose(b, x_true, rtol=tol_for(dtype, 1e4),
                               atol=tol_for(dtype, 1e4))


@pytest.mark.parametrize("uplo", ["U", "L"])
def test_la_sysv(rng, dtype, uplo):
    n = 11
    a = rand_matrix(rng, n, n, dtype)
    a = a + a.T
    a[np.diag_indices(n)] += (np.arange(n) - n / 2).astype(a.dtype)
    x_true = rand_vector(rng, n, dtype)
    b = (a @ x_true).astype(dtype)
    ipiv = np.zeros(n, dtype=np.int64)
    la_sysv(a.copy(), b, uplo=uplo, ipiv=ipiv)
    np.testing.assert_allclose(b, x_true, rtol=tol_for(dtype, 3e4),
                               atol=tol_for(dtype, 3e4))


def test_la_hesv(rng, complex_dtype):
    n = 9
    a = rand_matrix(rng, n, n, complex_dtype)
    a = a + np.conj(a.T)
    np.fill_diagonal(a, a.diagonal().real + np.arange(n) - n / 2)
    x_true = rand_vector(rng, n, complex_dtype)
    b = (a @ x_true).astype(complex_dtype)
    la_hesv(a.copy(), b)
    np.testing.assert_allclose(b, x_true, rtol=tol_for(complex_dtype, 3e4),
                               atol=tol_for(complex_dtype, 3e4))


def test_la_spsv_la_hpsv(rng):
    n = 8
    a = rand_matrix(rng, n, n, np.float64)
    a = a + a.T
    a[np.diag_indices(n)] += np.arange(n) - n / 2
    ap = pack(a, "U")
    x_true = rand_vector(rng, n, np.float64)
    b = a @ x_true
    la_spsv(ap, b)
    np.testing.assert_allclose(b, x_true, atol=1e-8)
    h = rand_matrix(rng, n, n, np.complex128)
    h = h + np.conj(h.T)
    np.fill_diagonal(h, h.diagonal().real + np.arange(n) - n / 2)
    hp = pack(h, "U")
    xc = rand_vector(rng, n, np.complex128)
    bc = h @ xc
    la_hpsv(hp, bc)
    np.testing.assert_allclose(bc, xc, atol=1e-8)


def test_all_four_dtypes_one_name(rng):
    """The headline genericity claim: one name, four type/precision
    combinations (paper §1.5)."""
    for dt in (np.float32, np.float64, np.complex64, np.complex128):
        n = 6
        a = well_conditioned(rng, n, dt)
        x = rand_vector(rng, n, dt)
        b = (a @ x).astype(dt)
        la_gesv(a, b)
        np.testing.assert_allclose(b, x, rtol=tol_for(dt, 1e4),
                                   atol=tol_for(dt, 1e4))
