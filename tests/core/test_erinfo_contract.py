"""The ERINFO protocol (paper Section 4 and Appendix D), plus the
Section 6 test-program machinery."""

import numpy as np
import pytest

from repro import (ComputationalError, IllegalArgument, Info, LinAlgError,
                   NonFiniteInput, SingularMatrix, la_gesv)
from repro.errors import (ALLOC_FAILED, NONFINITE, WORK_REDUCED,
                          WorkspaceError, erinfo)
from repro.testing import (GesvTestProgram, residual_ratio,
                           run_gesv_error_exits)
from repro.testing.ratios import (lu_reconstruction_ratio,
                                  orthogonality_ratio)


class TestErinfo:
    def test_success_sets_zero(self):
        info = Info(99)
        erinfo(0, "LA_TEST", info)
        assert info.value == 0

    def test_error_without_info_raises(self):
        with pytest.raises(ComputationalError):
            erinfo(3, "LA_TEST")
        with pytest.raises(IllegalArgument):
            erinfo(-2, "LA_TEST")

    def test_error_with_info_records(self):
        info = Info()
        erinfo(3, "LA_TEST", info)
        assert info.value == 3
        erinfo(-2, "LA_TEST", info)
        assert info.value == -2

    def test_allocation_failure_code(self):
        with pytest.raises(WorkspaceError):
            erinfo(ALLOC_FAILED, "LA_TEST")

    def test_warning_code_never_raises(self):
        # The paper's ERINFO: LINFO <= -200 is a warning, stored only.
        info = Info()
        erinfo(WORK_REDUCED, "LA_TEST", info)
        assert info.value == WORK_REDUCED
        erinfo(WORK_REDUCED, "LA_TEST")  # no raise even without info

    def test_warning_band_interior_never_raises(self):
        # Regression: the docstring and code must agree that every code
        # in -200 >= linfo > -1000 is warning-class.  -300 once fell in a
        # gap between the documented rule and the is_error test.
        info = Info(123)
        erinfo(-300, "LA_TEST", info)
        assert info.value == -300
        erinfo(-300, "LA_TEST")  # stored-only: no raise without info
        erinfo(-999, "LA_TEST")

    def test_nonfinite_class_is_error(self):
        # NONFINITE - i sits below the warning band and must raise.
        with pytest.raises(NonFiniteInput) as e:
            erinfo(NONFINITE - 1, "LA_TEST")
        assert e.value.info == NONFINITE - 1
        assert e.value.position == 1
        info = Info()
        erinfo(NONFINITE - 2, "LA_TEST", info)
        assert info.value == NONFINITE - 2

    def test_specific_exception_passthrough(self):
        exc = SingularMatrix("LA_GESV", 4)
        with pytest.raises(SingularMatrix) as e:
            erinfo(4, "LA_GESV", exc=exc)
        assert e.value.info == 4

    def test_exception_carries_routine_name(self):
        try:
            la_gesv(np.ones((3, 3)), np.ones(3))
        except LinAlgError as e:
            assert e.srname == "LA_GESV"
            assert e.info > 0
        else:
            pytest.fail("expected SingularMatrix")


class TestInfoObject:
    def test_truthiness(self):
        assert not Info(0)
        assert Info(2)
        assert Info(-1)

    def test_int_conversion_and_equality(self):
        i = Info(5)
        assert int(i) == 5
        assert i == 5
        assert i == Info(5)
        assert i != 4

    def test_hashable_consistent_with_eq(self):
        # Regression: defining __eq__ without __hash__ silently made
        # Info unhashable; equal handles must hash equally.
        assert hash(Info(3)) == hash(Info(3))
        assert Info(3) in {Info(3), Info(4)}
        assert len({Info(0), Info(0), Info(2)}) == 2

    def test_fallback_fields_default_clear(self):
        i = Info(0)
        assert i.fallback is None
        assert i.rcond is None
        assert repr(Info(2)) == "Info(2)"
        j = Info(0)
        j.fallback = "LA_SYSV"
        assert "LA_SYSV" in repr(j)

    def test_repr_shows_fallback_and_rcond(self):
        j = Info(0)
        j.fallback = "LA_SYSV"
        j.rcond = 0.25
        assert repr(j) == "Info(0, fallback='LA_SYSV', rcond=0.25)"
        k = Info(3)
        k.rcond = 0.5
        assert repr(k) == "Info(3, rcond=0.5)"


class TestErrorExits:
    def test_all_nine_pass(self):
        ran, passed = run_gesv_error_exits()
        assert ran == 9
        assert passed == 9


class TestHarness:
    def test_report_matches_appendix_f_shape(self):
        rep = GesvTestProgram(threshold=10.0, sizes=(20, 40, 60)).run()
        text = rep.format()
        assert "SGESV Test Example Program Results." in text
        assert "Threshold value of test ratio = 10.00" in text
        assert "the machine eps = 1.19209E-07" in text
        assert "3 matrices were tested with 4 tests. NRHS was 50 and one." \
            in text
        assert "The biggest tested matrix was 60 x 60" in text
        assert "12 tests passed." in text
        assert "0 tests failed." in text
        assert "9 error exits tests were ran" in text
        assert "9 tests passed." in text

    def test_partial_failure_report(self):
        # A threshold below the hardest case's ratio reproduces the
        # "Test Partly Fails" outcome shape: failures concentrate on the
        # largest matrix.
        rep = GesvTestProgram(threshold=10.0).run()
        worst = max(c.ratio for c in rep.cases)
        tight = GesvTestProgram(threshold=worst * 0.999).run()
        assert tight.failed >= 1
        failing = [c for c in tight.cases if not c.passed]
        assert all(c.n == max(tight.cases, key=lambda q: q.n).n
                   for c in failing)
        text = tight.format()
        assert "Failed." in text
        assert "ratio = || B - AX || / ( || A ||*|| X ||*eps )" in text

    def test_ratio_scales_like_backward_error(self):
        rng = np.random.default_rng(0)
        n = 30
        a = rng.standard_normal((n, n)) + np.eye(n) * n
        x = rng.standard_normal((n, 2))
        b = a @ x
        # Exact solution: tiny ratio.
        assert residual_ratio(a, x, b) < 1.0
        # Perturbed solution: ratio grows accordingly.
        assert residual_ratio(a, x + 1e-3, b) > 1e8


def test_lu_reconstruction_ratio(rng):
    from repro.lapack77 import getrf
    n = 12
    a0 = rng.standard_normal((n, n))
    a = a0.copy()
    ipiv, _ = getrf(a)
    assert lu_reconstruction_ratio(a0, a, ipiv) < 10


def test_orthogonality_ratio(rng):
    from repro.lapack77 import laror
    q = laror(10, rng=rng)
    assert orthogonality_ratio(q) < 10
    assert orthogonality_ratio(q * 1.5) > 1e10


@pytest.fixture
def rng():
    return np.random.default_rng(11)
