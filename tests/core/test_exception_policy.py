"""The numerical-exception policy: NaN/Inf screening modes, scoping,
reference-LAPACK propagate semantics, and the RCOND guard."""

import warnings

import numpy as np
import pytest

from repro import (Info, NonFiniteInput, exception_policy, get_policy,
                   la_gesv, la_posv, set_policy)
from repro.core import (la_gbsv, la_gels, la_gesvd, la_gesvx, la_gtsv,
                        la_posvx, la_syev)
from repro.errors import (NONFINITE, IllConditionedWarning,
                          NonFiniteWarning, NotPositiveDefinite)

from ..conftest import spd_matrix, well_conditioned


@pytest.fixture(autouse=True)
def _restore_policy():
    yield
    set_policy(nonfinite="propagate", rcond_guard="silent", fallbacks=False)


def _poisoned(rng, n=4, where="a", value=np.nan):
    a = well_conditioned(rng, n, np.float64)
    b = np.ones(n)
    if where == "a":
        a[0, 0] = value
    else:
        b[0] = value
    return a, b


class TestPolicyObject:
    def test_default_is_propagate(self):
        pol = get_policy()
        assert pol.nonfinite == "propagate"
        assert pol.rcond_guard == "silent"
        assert pol.fallbacks is False

    def test_set_policy_validates_modes(self):
        with pytest.raises(ValueError):
            set_policy(nonfinite="explode")
        with pytest.raises(ValueError):
            set_policy(rcond_guard="loud")

    def test_context_manager_restores(self):
        set_policy(nonfinite="warn")
        with exception_policy(nonfinite="check", fallbacks=True):
            assert get_policy().nonfinite == "check"
            assert get_policy().fallbacks is True
        assert get_policy().nonfinite == "warn"
        assert get_policy().fallbacks is False

    def test_context_manager_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with exception_policy(nonfinite="check"):
                raise RuntimeError("boom")
        assert get_policy().nonfinite == "propagate"

    def test_config_reexports_policy(self):
        from repro import config
        assert config.get_policy() is get_policy()
        with config.exception_policy(nonfinite="check"):
            assert get_policy().nonfinite == "check"


class TestCheckMode:
    def test_gesv_nan_in_a(self, rng):
        a, b = _poisoned(rng, where="a")
        with exception_policy(nonfinite="check"):
            with pytest.raises(NonFiniteInput) as e:
                la_gesv(a, b)
        assert e.value.info == NONFINITE - 1
        assert e.value.position == 1

    def test_gesv_inf_in_b_position_two(self, rng):
        a, b = _poisoned(rng, where="b", value=np.inf)
        with exception_policy(nonfinite="check"):
            with pytest.raises(NonFiniteInput) as e:
                la_gesv(a, b)
        assert e.value.info == NONFINITE - 2

    def test_info_handle_records_instead_of_raising(self, rng):
        a, b = _poisoned(rng, where="a")
        info = Info()
        with exception_policy(nonfinite="check"):
            la_gesv(a, b, info=info)
        assert info.value == NONFINITE - 1

    def test_gtsv_positions_follow_argument_order(self, rng):
        n = 5
        dl = np.ones(n - 1)
        d = np.full(n, 4.0)
        du = np.ones(n - 1)
        du[0] = np.nan
        b = np.ones(n)
        with exception_policy(nonfinite="check"):
            with pytest.raises(NonFiniteInput) as e:
                la_gtsv(dl, d, du, b)
        assert e.value.position == 3

    def test_expert_driver_screens_too(self, rng):
        a, b = _poisoned(rng, where="a")
        with exception_policy(nonfinite="check"):
            with pytest.raises(NonFiniteInput):
                la_gesvx(a, b)

    def test_clean_inputs_unaffected(self, rng):
        n = 6
        a0 = well_conditioned(rng, n, np.float64)
        x_true = np.linspace(1, 2, n)
        b = a0 @ x_true
        with exception_policy(nonfinite="check"):
            la_gesv(a0.copy(), b)
        np.testing.assert_allclose(b, x_true, rtol=1e-10)


class TestWarnMode:
    def test_warns_and_proceeds(self, rng):
        a, b = _poisoned(rng, where="a")
        with exception_policy(nonfinite="warn"):
            with pytest.warns(NonFiniteWarning):
                la_gesv(a, b)
        # The computation ran: the poison propagated into the solution.
        assert not np.all(np.isfinite(b))

    def test_no_warning_for_clean_input(self, rng):
        a = well_conditioned(rng, 4, np.float64)
        b = np.ones(4)
        with exception_policy(nonfinite="warn"):
            with warnings.catch_warnings():
                warnings.simplefilter("error", NonFiniteWarning)
                la_gesv(a, b)


class TestPropagateMode:
    def test_nan_flows_through_gesv(self, rng):
        a, b = _poisoned(rng, where="a")
        la_gesv(a, b)  # no raise, no warning
        assert not np.all(np.isfinite(b))

    def test_infinite_cholesky_pivot_propagates(self):
        # Reference xPOTF2 tests AJJ <= 0 .OR. DISNAN(AJJ): an infinite
        # pivot is NOT "not positive definite" — it propagates.  The old
        # ad-hoc `isfinite` check mislabelled this case.
        a = np.diag([np.inf, 1.0])
        b = np.ones(2)
        la_posv(a, b)  # must not raise
        assert b[0] == 0.0  # 1/inf

    def test_nan_cholesky_pivot_still_fails(self):
        a = np.diag([np.nan, 1.0])
        with pytest.raises(NotPositiveDefinite) as e:
            la_posv(a, np.ones(2))
        assert e.value.info == 1

    def test_nrm2_returns_nonfinite_unchanged(self):
        from repro.blas import nrm2
        assert np.isinf(nrm2(np.array([1.0, np.inf])))
        assert np.isnan(nrm2(np.array([1.0, np.nan])))


class TestRcondGuard:
    def _illconditioned(self):
        return np.diag([1.0, 1.0, 1.0, 1e-18])

    def test_silent_default_sets_info_only(self):
        a = self._illconditioned()
        info = Info()
        with warnings.catch_warnings():
            warnings.simplefilter("error", IllConditionedWarning)
            res = la_gesvx(a, np.ones(4), info=info)
        assert info.value == 5  # n + 1
        assert res.rcond < np.finfo(np.float64).eps

    def test_warn_mode_announces(self):
        a = self._illconditioned()
        info = Info()
        with exception_policy(rcond_guard="warn"):
            with pytest.warns(IllConditionedWarning):
                la_gesvx(a, np.ones(4), info=info)
        assert info.value == 5

    def test_warn_mode_spd_family(self):
        a = np.diag([1.0, 1.0, 1e-18])
        info = Info()
        with exception_policy(rcond_guard="warn"):
            with pytest.warns(IllConditionedWarning):
                la_posvx(a, np.ones(3), info=info)
        assert info.value == 4


class TestScreeningAcrossFamilies:
    """Check-mode coverage for the remaining acceptance families."""

    def test_posv(self, rng):
        a = spd_matrix(rng, 4, np.float64)
        a[0, 0] = np.nan
        with exception_policy(nonfinite="check"):
            with pytest.raises(NonFiniteInput):
                la_posv(a, np.ones(4))

    def test_gbsv(self):
        n, kl, ku = 5, 1, 1
        ab = np.zeros((2 * kl + ku + 1, n))
        ab[kl + ku, :] = 4.0
        ab[kl + ku - 1, 1:] = 1.0
        ab[kl + ku + 1, :-1] = np.nan
        with exception_policy(nonfinite="check"):
            with pytest.raises(NonFiniteInput) as e:
                la_gbsv(ab, np.ones(n), kl=kl)
        assert e.value.position == 1

    def test_gels(self, rng):
        a = well_conditioned(rng, 5, np.float64)[:, :3].copy()
        a[2, 1] = np.inf
        with exception_policy(nonfinite="check"):
            with pytest.raises(NonFiniteInput):
                la_gels(a, np.ones(5))

    def test_syev(self, rng):
        a = spd_matrix(rng, 4, np.float64)
        a[1, 1] = np.nan
        with exception_policy(nonfinite="check"):
            with pytest.raises(NonFiniteInput):
                la_syev(a)

    def test_gesvd(self, rng):
        a = well_conditioned(rng, 4, np.float64)
        a[3, 0] = -np.inf
        with exception_policy(nonfinite="check"):
            with pytest.raises(NonFiniteInput):
                la_gesvd(a)
