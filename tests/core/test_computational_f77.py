"""Computational routines (Appendix G §9), matrix utilities (§10), and
the F77_LAPACK explicit-argument layer (paper Section 2)."""

import numpy as np
import pytest

from repro import Info, IllegalArgument, f77
from repro.core import (la_geequ, la_gerfs, la_getrf, la_getri, la_getrs,
                        la_hetrd, la_lagge, la_lange, la_orgtr, la_potrf,
                        la_sygst, la_sytrd, la_ungtr, la_hegst)

from ..conftest import (rand_matrix, rand_vector, spd_matrix, tol_for,
                        well_conditioned)


def test_la_getrf_with_rcond(rng):
    n = 20
    a0 = well_conditioned(rng, n, np.float64)
    a = a0.copy()
    ipiv, rcond = la_getrf(a, rcond=True)
    true_rcond = 1 / np.linalg.cond(a0, 1)
    assert true_rcond / 10 <= rcond <= true_rcond * 10
    # Without the request no estimate is produced.
    ipiv2, rcond2 = la_getrf(a0.copy())
    assert rcond2 is None


def test_la_getrf_rectangular(rng):
    a = rand_matrix(rng, 8, 5, np.float64)
    ipiv, rc = la_getrf(a)
    assert len(ipiv) == 5
    # rcond on a rectangular matrix is an argument error.
    info = Info()
    la_getrf(rand_matrix(rng, 8, 5, np.float64), rcond=True, info=info)
    assert info == -3


def test_la_getrs_la_getri_roundtrip(rng, dtype):
    n = 10
    a0 = well_conditioned(rng, n, dtype)
    a = a0.copy()
    ipiv, _ = la_getrf(a)
    x_true = rand_vector(rng, n, dtype)
    b = (a0 @ x_true).astype(dtype)
    la_getrs(a, ipiv, b)
    np.testing.assert_allclose(b, x_true, rtol=tol_for(dtype, 1e4),
                               atol=tol_for(dtype, 1e4))
    la_getri(a, ipiv)
    np.testing.assert_allclose(a @ a0, np.eye(n), atol=tol_for(dtype, 1e4))


def test_la_gerfs(rng):
    n = 20
    a0 = well_conditioned(rng, n, np.float64)
    af = a0.copy()
    ipiv, _ = la_getrf(af)
    x_true = rand_vector(rng, n, np.float64)
    b = a0 @ x_true
    x = b.copy()
    la_getrs(af, ipiv, x)
    x += 1e-7
    ferr, berr = la_gerfs(a0, af, ipiv, b, x)
    assert np.all(berr < 1e-13)


def test_la_geequ(rng):
    a = rand_matrix(rng, 6, 6, np.float64)
    a[2] *= 1e8
    r, c, rowcnd, colcnd, amax = la_geequ(a)
    assert rowcnd < 0.1
    assert np.abs(np.outer(r, c) * a).max() <= 1 + 1e-10


def test_la_potrf_rcond(rng):
    n = 15
    a0 = spd_matrix(rng, n, np.float64)
    a = a0.copy()
    rcond = la_potrf(a, rcond=True)
    true_rcond = 1 / np.linalg.cond(a0, 1)
    assert true_rcond / 10 <= rcond <= true_rcond * 10


def test_la_sytrd_orgtr(rng):
    n = 10
    a0 = rand_matrix(rng, n, n, np.float64)
    a0 = a0 + a0.T
    a = a0.copy()
    d, e, tau = la_sytrd(a, uplo="L")
    q = a.copy()
    la_orgtr(q, tau, uplo="L")
    t = q.T @ a0 @ q
    expect = np.diag(d) + np.diag(e, 1) + np.diag(e, -1)
    np.testing.assert_allclose(t, expect, atol=1e-9)


def test_la_hetrd_ungtr(rng):
    n = 8
    a0 = rand_matrix(rng, n, n, np.complex128)
    a0 = a0 + np.conj(a0.T)
    np.fill_diagonal(a0, a0.diagonal().real)
    a = a0.copy()
    d, e, tau = la_hetrd(a, uplo="L")
    assert d.dtype.kind == "f"
    q = a.copy()
    la_ungtr(q, tau, uplo="L")
    t = np.conj(q.T) @ a0 @ q
    expect = np.diag(d) + np.diag(e, 1) + np.diag(e, -1)
    np.testing.assert_allclose(t, expect, atol=1e-9)


def test_la_sygst_hegst(rng):
    sla = pytest.importorskip("scipy.linalg")
    n = 8
    a0 = rand_matrix(rng, n, n, np.float64)
    a0 = a0 + a0.T
    b0 = spd_matrix(rng, n, np.float64)
    b = b0.copy()
    la_potrf(b, uplo="U")
    a = a0.copy()
    la_sygst(a, b, itype=1, uplo="U")
    ref = sla.eigh(a0, b0, eigvals_only=True)
    np.testing.assert_allclose(np.linalg.eigvalsh(a), ref, atol=1e-9)


def test_la_lange_all_norms(rng):
    a = rand_matrix(rng, 7, 5, np.float64)
    assert np.isclose(la_lange(a, "1"), np.linalg.norm(a, 1))
    assert np.isclose(la_lange(a, "I"), np.linalg.norm(a, np.inf))
    assert np.isclose(la_lange(a, "F"), np.linalg.norm(a, "fro"))
    assert np.isclose(la_lange(a, "M"), np.abs(a).max())
    info = Info()
    la_lange(a, "X", info=info)
    assert info == -2


def test_la_lagge_fills_in_place(rng):
    a = np.zeros((8, 6))
    d = np.array([4.0, 3.0, 2.0, 1.0, 0.5, 0.25])
    la_lagge(a, d=d, iseed=42)
    np.testing.assert_allclose(np.linalg.svd(a, compute_uv=False), d,
                               rtol=1e-9)


# --- the F77 layer -----------------------------------------------------------

class TestF77Layer:
    def test_la_gesv_explicit_args(self, rng, dtype):
        n, nrhs = 8, 2
        a0 = well_conditioned(rng, n, dtype)
        x_true = rand_matrix(rng, n, nrhs, dtype)
        b = (a0 @ x_true).astype(dtype)
        ipiv = np.zeros(n, dtype=np.int64)
        info = f77.la_gesv(n, nrhs, a0.copy(), n, ipiv, b, n)
        assert info == 0
        np.testing.assert_allclose(b, x_true, rtol=tol_for(dtype, 1e4),
                                   atol=tol_for(dtype, 1e4))

    def test_xerbla_on_bad_lda(self, rng):
        a = np.ones((3, 3))
        with pytest.raises(IllegalArgument):
            f77.la_gesv(3, 1, a, 2, np.zeros(3, np.int64), np.ones(3), 3)

    def test_xerbla_on_negative_n(self):
        with pytest.raises(IllegalArgument):
            f77.la_gesv(-1, 1, np.ones((1, 1)), 1,
                        np.zeros(1, np.int64), np.ones(1), 1)

    def test_info_positive_returned_not_raised(self):
        a = np.ones((3, 3))
        b = np.ones(3)
        info = f77.la_gesv(3, 1, a, 3, np.zeros(3, np.int64), b, 3)
        assert info > 0

    def test_subarray_semantics(self, rng):
        # Operating on the leading n×n of a larger array — the LDA idiom.
        big = np.zeros((10, 10))
        n = 4
        a = well_conditioned(rng, n, np.float64)
        big[:n, :n] = a
        b = np.zeros(10)
        x = rand_vector(rng, n, np.float64)
        b[:n] = a @ x
        ipiv = np.zeros(10, dtype=np.int64)
        info = f77.la_gesv(n, 1, big, 10, ipiv, b, 10)
        assert info == 0
        np.testing.assert_allclose(b[:n], x, atol=1e-10)
        assert np.all(b[n:] == 0)

    def test_getrf_getrs_getri(self, rng):
        n = 6
        a0 = well_conditioned(rng, n, np.float64)
        a = a0.copy()
        piv = np.zeros(n, dtype=np.int64)
        assert f77.la_getrf(n, n, a, n, piv) == 0
        b = a0 @ np.ones(n)
        assert f77.la_getrs("N", n, 1, a, n, piv, b, n) == 0
        np.testing.assert_allclose(b, 1.0, atol=1e-10)
        work = np.zeros(n * 64)
        assert f77.la_getri(n, a, n, piv, work, len(work)) == 0
        np.testing.assert_allclose(a @ a0, np.eye(n), atol=1e-10)

    def test_posv_syev_gesvd(self, rng):
        n = 6
        spd = spd_matrix(rng, n, np.float64)
        b = spd @ np.ones(n)
        assert f77.la_posv("U", n, 1, spd.copy(), n, b, n) == 0
        np.testing.assert_allclose(b, 1.0, atol=1e-9)
        s = rand_matrix(rng, n, n, np.float64)
        s = s + s.T
        w = np.zeros(n)
        assert f77.la_syev("N", "U", n, s.copy(), n, w) == 0
        np.testing.assert_allclose(w, np.linalg.eigvalsh(s), atol=1e-10)
        m = rand_matrix(rng, 7, 4, np.float64)
        sv = np.zeros(4)
        assert f77.la_gesvd("N", "N", 7, 4, m.copy(), 7, sv, None, 1,
                            None, 1) == 0
        np.testing.assert_allclose(sv, np.linalg.svd(m, compute_uv=False),
                                   atol=1e-10)

    def test_gbsv_gtsv_ptsv_sysv(self, rng):
        n = 8
        # tridiagonal
        dl = rand_vector(rng, n - 1, np.float64)
        d = rand_vector(rng, n, np.float64) + 4
        du = rand_vector(rng, n - 1, np.float64)
        aa = np.diag(d) + np.diag(dl, -1) + np.diag(du, 1)
        x = np.ones(n)
        b = aa @ x
        assert f77.la_gtsv(n, 1, dl.copy(), d.copy(), du.copy(), b, n) == 0
        np.testing.assert_allclose(b, 1.0, atol=1e-10)
        # SPD tridiagonal
        e = rand_vector(rng, n - 1, np.float64)
        dd = np.abs(rand_vector(rng, n, np.float64)) + 3
        at = np.diag(dd) + np.diag(e, -1) + np.diag(e, 1)
        b2 = at @ x
        assert f77.la_ptsv(n, 1, dd.copy(), e.copy(), b2, n) == 0
        np.testing.assert_allclose(b2, 1.0, atol=1e-10)
        # symmetric indefinite
        s = rand_matrix(rng, n, n, np.float64)
        s = s + s.T + np.diag(np.arange(n) - n / 2.0)
        b3 = s @ x
        ipiv = np.zeros(n, dtype=np.int64)
        assert f77.la_sysv("U", n, 1, s.copy(), n, ipiv, b3, n) == 0
        np.testing.assert_allclose(b3, 1.0, atol=1e-9)
