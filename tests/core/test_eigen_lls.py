"""Core-layer eigen/SVD/least-squares drivers."""

import numpy as np
import pytest

from repro import Info
from repro.core import (la_geev, la_gees, la_gelss, la_gels, la_gelsx,
                        la_gesvd, la_ggglm, la_gglse, la_heev, la_hegv,
                        la_sbev, la_spev, la_stev, la_syev, la_syevd,
                        la_syevx, la_sygv, la_stevd, la_geesx, la_geevx,
                        la_gegs, la_gegv, la_ggsvd, la_spevd, la_stevx)
from repro.storage import full_to_sym_band, pack

from ..conftest import rand_matrix, rand_vector, spd_matrix, tol_for


def sym(rng, n, dtype, hermitian=False):
    a = rand_matrix(rng, n, n, dtype)
    m = a + (np.conj(a.T) if hermitian else a.T)
    if hermitian:
        np.fill_diagonal(m, m.diagonal().real)
    return m


def test_la_syev_and_vectors(rng, real_dtype):
    n = 12
    a0 = sym(rng, n, real_dtype)
    a = a0.copy()
    w = la_syev(a, jobz="V")
    ref = np.linalg.eigvalsh(a0.astype(np.float64))
    np.testing.assert_allclose(w, ref, atol=tol_for(real_dtype, 300))
    np.testing.assert_allclose(a0 @ a, a * w[None, :].astype(a.dtype),
                               atol=tol_for(real_dtype, 1e3) * max(
                                   1, np.abs(a0).max()))


def test_la_syev_w_output_argument(rng):
    n = 8
    a = sym(rng, n, np.float64)
    w = np.zeros(n)
    out = la_syev(a.copy(), w)
    assert out is w


def test_la_heev(rng, complex_dtype):
    n = 10
    a0 = sym(rng, n, complex_dtype, hermitian=True)
    w = la_heev(a0.copy())
    np.testing.assert_allclose(w, np.linalg.eigvalsh(
        a0.astype(np.complex128)), atol=tol_for(complex_dtype, 300))


def test_la_syevd_matches_la_syev(rng):
    n = 40
    a = sym(rng, n, np.float64)
    w1 = la_syev(a.copy())
    w2 = la_syevd(a.copy())
    np.testing.assert_allclose(w1, w2, atol=1e-9)


def test_la_syevx_selection(rng):
    n = 20
    a = sym(rng, n, np.float64)
    ref = np.linalg.eigvalsh(a)
    w, m, ifail = la_syevx(a.copy(), il=2, iu=6)
    assert m == 5
    np.testing.assert_allclose(w, ref[2:7], atol=1e-8)
    w2, z, m2, ifail2 = la_syevx(a.copy(), z=True, il=0, iu=2)
    assert z.shape == (n, 3)
    for j in range(3):
        assert np.linalg.norm(a @ z[:, j] - w2[j] * z[:, j]) < 1e-6


def test_la_spev_sbev_stev(rng):
    n = 10
    a = sym(rng, n, np.float64)
    ref = np.linalg.eigvalsh(a)
    w = la_spev(pack(a, "U"))
    np.testing.assert_allclose(w, ref, atol=1e-9)
    w2, z = la_spev(pack(a, "U"), z=True)
    np.testing.assert_allclose(w2, ref, atol=1e-9)
    np.testing.assert_allclose(a @ z, z * w2[None, :], atol=1e-8)
    # band (truncate to kd=2 and compare against its own dense form)
    kd = 2
    ab_full = a.copy()
    for i in range(n):
        for j in range(n):
            if abs(i - j) > kd:
                ab_full[i, j] = 0
    ab = full_to_sym_band(ab_full, kd, "U")
    wb = la_sbev(ab)
    np.testing.assert_allclose(wb, np.linalg.eigvalsh(ab_full), atol=1e-9)
    # tridiagonal
    d = rng.standard_normal(n)
    e = rng.standard_normal(n - 1)
    t = np.diag(d) + np.diag(e, 1) + np.diag(e, -1)
    dd, ee = d.copy(), e.copy()
    w3 = la_stev(dd, ee)
    np.testing.assert_allclose(w3, np.linalg.eigvalsh(t), atol=1e-10)
    dd2, ee2 = d.copy(), e.copy()
    w4 = la_stevd(dd2, ee2)
    np.testing.assert_allclose(np.sort(w4), np.linalg.eigvalsh(t),
                               atol=1e-9)
    w5, m, ifail = la_stevx(d, e, il=0, iu=3)
    np.testing.assert_allclose(w5, np.linalg.eigvalsh(t)[:4], atol=1e-8)


def test_la_gees_and_geev(rng):
    n = 12
    a0 = rand_matrix(rng, n, n, np.float64)
    t = a0.copy()
    w, vs, sdim = la_gees(t, vs=True)
    np.testing.assert_allclose(vs @ t @ vs.T, a0, atol=1e-9)
    w2, vr = la_geev(a0.copy(), vr=True)
    for j in range(n):
        r = np.linalg.norm(a0.astype(complex) @ vr[:, j] - w2[j] * vr[:, j])
        assert r < 1e-7


def test_la_gees_select(rng):
    n = 10
    a0 = rand_matrix(rng, n, n, np.complex128)
    t = a0.copy()
    w, sdim = la_gees(t, select=lambda lam: lam.real > 0)
    ref = np.linalg.eigvals(a0)
    assert sdim == np.sum(ref.real > 0)
    lead = np.diag(t)[:sdim]
    assert np.all(lead.real > 0)


def test_la_geesx_la_geevx(rng):
    n = 10
    a0 = rand_matrix(rng, n, n, np.float64)
    w, sdim, rconde, rcondv = la_geesx(a0.copy(),
                                       select=lambda lam: abs(lam) > 0.5)
    assert 0 < rconde <= 1
    (w2, vl, vr, ilo, ihi, scale, abnrm, rce,
     rcv) = la_geevx(a0.copy(), vl=True, vr=True)
    assert np.all(rce > 0)
    assert abnrm > 0


def test_la_gesvd(rng, dtype):
    m, n = 10, 6
    a0 = rand_matrix(rng, m, n, dtype)
    s = la_gesvd(a0.copy())
    ref = np.linalg.svd(a0.astype(np.complex128 if np.dtype(dtype).kind
                                  == "c" else np.float64),
                        compute_uv=False)
    np.testing.assert_allclose(s, ref, atol=tol_for(dtype, 100))
    s2, u, vt = la_gesvd(a0.copy(), u=True, vt=True)
    rec = (u * s2[None, :].astype(u.dtype)) @ vt
    np.testing.assert_allclose(rec, a0, atol=tol_for(dtype, 1e3))


def test_la_gels_overdetermined(rng, dtype):
    m, n = 15, 6
    a0 = rand_matrix(rng, m, n, dtype)
    b0 = rand_matrix(rng, m, 2, dtype)
    x = la_gels(a0.copy(), b0.copy())
    ref = np.linalg.lstsq(a0.astype(np.complex128 if np.dtype(dtype).kind
                                    == "c" else np.float64),
                          b0.astype(np.complex128 if np.dtype(dtype).kind
                                    == "c" else np.float64),
                          rcond=None)[0]
    np.testing.assert_allclose(x, ref, atol=tol_for(dtype, 2e4))


def test_la_gels_underdetermined_pads(rng):
    m, n = 4, 9
    a0 = rand_matrix(rng, m, n, np.float64)
    b0 = rand_vector(rng, m, np.float64)
    x = la_gels(a0.copy(), b0.copy())
    assert x.shape == (n,)
    ref = np.linalg.lstsq(a0, b0, rcond=None)[0]
    np.testing.assert_allclose(x, ref, atol=1e-10)


def test_la_gelsx_and_gelss_rank(rng):
    m, n = 12, 5
    a0 = rand_matrix(rng, m, n, np.float64)
    a0[:, 4] = a0[:, 0] + a0[:, 1]
    b0 = rand_vector(rng, m, np.float64)
    x1, rank1 = la_gelsx(a0.copy(), b0.copy(), rcond=1e-10)
    x2, rank2, s = la_gelss(a0.copy(), b0.copy(), rcond=1e-10)
    assert rank1 == rank2 == 4
    assert s[4] < 1e-10 * s[0]
    ref = np.linalg.lstsq(a0, b0, rcond=None)[0]
    np.testing.assert_allclose(x1, ref, atol=1e-8)
    np.testing.assert_allclose(x2, ref, atol=1e-8)


def test_la_gglse_ggglm(rng):
    m, n, p = 10, 6, 3
    a = rand_matrix(rng, m, n, np.float64)
    bmat = rand_matrix(rng, p, n, np.float64)
    c = rand_vector(rng, m, np.float64)
    d = rand_vector(rng, p, np.float64)
    x = la_gglse(a.copy(), bmat.copy(), c.copy(), d.copy())
    np.testing.assert_allclose(bmat @ x, d, atol=1e-10)
    na, ma_, pa = 8, 4, 6
    aa = rand_matrix(rng, na, ma_, np.float64)
    bb = rand_matrix(rng, na, pa, np.float64)
    dd = rand_vector(rng, na, np.float64)
    x2, y2 = la_ggglm(aa.copy(), bb.copy(), dd.copy())
    np.testing.assert_allclose(aa @ x2 + bb @ y2, dd, atol=1e-10)


def test_la_sygv_hegv(rng):
    sla = pytest.importorskip("scipy.linalg")
    n = 10
    a = sym(rng, n, np.float64)
    b = spd_matrix(rng, n, np.float64)
    w = la_sygv(a.copy(), b.copy(), jobz="V")
    ref = sla.eigh(a, b, eigvals_only=True)
    np.testing.assert_allclose(w, ref, atol=1e-8)
    ah = sym(rng, n, np.complex128, hermitian=True)
    bh = spd_matrix(rng, n, np.complex128)
    wh = la_hegv(ah.copy(), bh.copy())
    refh = sla.eigh(ah, bh, eigvals_only=True)
    np.testing.assert_allclose(wh, refh, atol=1e-8)


def test_la_gegs_gegv(rng):
    n = 8
    a = rand_matrix(rng, n, n, np.float64)
    b = rand_matrix(rng, n, n, np.float64)
    alpha, beta, vsl, vsr = la_gegs(a.copy(), b.copy(), vsl=True, vsr=True)
    sla = pytest.importorskip("scipy.linalg")
    got = np.sort(np.abs(alpha / beta))
    ref = np.sort(np.abs(sla.eigvals(a, b)))
    np.testing.assert_allclose(got, ref, rtol=1e-7)
    alpha2, beta2, vr = la_gegv(a.copy(), b.copy(), vr=True)
    for j in range(n):
        x = vr[:, j]
        r = beta2[j] * (a.astype(complex) @ x) \
            - alpha2[j] * (b.astype(complex) @ x)
        assert np.linalg.norm(r) < 1e-8


def test_la_ggsvd(rng):
    m, p, n = 8, 6, 5
    a = rand_matrix(rng, m, n, np.float64)
    b = rand_matrix(rng, p, n, np.float64)
    alpha, beta, k, l, u, v, q, r = la_ggsvd(a.copy(), b.copy())
    assert k + l == n
    np.testing.assert_allclose(alpha ** 2 + beta ** 2, 1.0, atol=1e-12)
    d1 = np.zeros((m, n))
    d1[np.arange(n), np.arange(n)] = alpha
    np.testing.assert_allclose(u @ d1 @ r @ q.T, a, atol=1e-9)
