"""Appendix G catalogue: every user-callable LAPACK90 routine exists,
is importable from the top-level package, and is callable with the
documented calling sequence."""

import inspect

import numpy as np
import pytest

import repro

# The complete Appendix G inventory, section by section.
CATALOGUE = {
    "Driver Routines for Linear Equations": [
        "la_gesv", "la_gbsv", "la_gtsv", "la_posv", "la_ppsv", "la_pbsv",
        "la_ptsv", "la_sysv", "la_hesv", "la_spsv", "la_hpsv",
    ],
    "Expert Driver Routines for Linear Equations": [
        "la_gesvx", "la_gbsvx", "la_gtsvx", "la_posvx", "la_ppsvx",
        "la_pbsvx", "la_ptsvx", "la_sysvx", "la_hesvx", "la_spsvx",
        "la_hpsvx",
    ],
    "Driver Routines for Linear Least Squares Problems": [
        "la_gels", "la_gelsx", "la_gelss",
    ],
    "Driver Routines for generalized Linear Least Squares Problems": [
        "la_gglse", "la_ggglm",
    ],
    "Driver Routines for Standard Eigenvalue and Singular Value Problems": [
        "la_syev", "la_heev", "la_spev", "la_hpev", "la_sbev", "la_hbev",
        "la_stev", "la_gees", "la_geev", "la_gesvd",
    ],
    "Divide and Conquer Driver Routines": [
        "la_syevd", "la_heevd", "la_spevd", "la_hpevd", "la_sbevd",
        "la_hbevd", "la_stevd",
    ],
    "Expert Driver Routines for Standard Eigenvalue Problems": [
        "la_syevx", "la_heevx", "la_spevx", "la_hpevx", "la_sbevx",
        "la_hbevx", "la_stevx", "la_geesx", "la_geevx",
    ],
    "Driver Routines for Generalized Eigenvalue and SVD Problems": [
        "la_sygv", "la_hegv", "la_spgv", "la_hpgv", "la_sbgv", "la_hbgv",
        "la_gegs", "la_gegv", "la_ggsvd",
    ],
    "Some Computational Routines": [
        "la_getrf", "la_getrs", "la_trtrs", "la_getri", "la_gerfs",
        "la_geequ", "la_potrf", "la_sygst", "la_hegst", "la_sytrd",
        "la_hetrd", "la_orgtr", "la_ungtr",
    ],
    "Matrix Manipulation Routines": [
        "la_lange", "la_lagge",
    ],
}

ALL_ROUTINES = [r for sec in CATALOGUE.values() for r in sec]


@pytest.mark.parametrize("name", ALL_ROUTINES)
def test_routine_exists_and_documented(name):
    fn = getattr(repro, name, None)
    assert fn is not None, f"{name} missing from the top-level package"
    assert callable(fn)
    assert fn.__doc__ and len(fn.__doc__.strip()) > 30, \
        f"{name} lacks meaningful documentation"
    # Every routine honours the optional INFO protocol.
    sig = inspect.signature(fn)
    assert "info" in sig.parameters, f"{name} is missing info="


def test_catalogue_complete():
    assert len(ALL_ROUTINES) == len(set(ALL_ROUTINES))
    assert len(ALL_ROUTINES) == 77


def test_every_driver_reachable_through_package_all():
    for name in ALL_ROUTINES:
        assert name in repro.__all__


@pytest.mark.parametrize("name", [
    "la_gesv", "la_posv", "la_sysv", "la_gels", "la_syev", "la_gesvd",
    "la_geev", "la_getrf",
])
def test_smoke_call_per_family(rng, name):
    """Minimal documented call per major family (catalogue round-trip)."""
    n = 6
    fn = getattr(repro, name)
    a = rng.standard_normal((n, n)) + np.eye(n) * n
    if name == "la_gesv":
        fn(a, a.sum(axis=1))
    elif name == "la_posv":
        fn(a @ a.T + np.eye(n), np.ones(n))
    elif name == "la_sysv":
        fn(a + a.T, np.ones(n))
    elif name == "la_gels":
        fn(rng.standard_normal((8, 4)), rng.standard_normal(8))
    elif name == "la_syev":
        fn(a + a.T)
    elif name == "la_gesvd":
        fn(rng.standard_normal((7, 4)))
    elif name == "la_geev":
        fn(a)
    elif name == "la_getrf":
        ipiv, rc = fn(a, rcond=True)
        assert rc is not None and 0 < rc <= 1


@pytest.fixture
def rng():
    return np.random.default_rng(7)
