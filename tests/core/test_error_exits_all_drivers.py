"""Error-exit sweep across the whole linear-equation catalogue — the
Section 6 methodology generalized beyond LA_GESV: every driver reports
a negative code through info= and raises IllegalArgument without it.

Expected codes come from :data:`repro.testing.ERROR_EXIT_CODES`, the
same (driver, argument, code) table the static LA002 rule cross-checks
against the live signatures.
"""

import numpy as np
import pytest

from repro import (Info, IllegalArgument, la_gbsv, la_gels, la_gesv,
                   la_gtsv, la_heev, la_hesv, la_pbsv, la_posv, la_ppsv,
                   la_ptsv, la_spsv, la_syev, la_sysv, la_sygv)
from repro.testing import ERROR_EXIT_CODES


def _code(driver, arg):
    return ERROR_EXIT_CODES[driver][arg]


# (description, call, driver, flagged argument)
CASES = [
    ("gesv: A not square",
     lambda: la_gesv(np.ones((2, 3)), np.ones(2)), "la_gesv", "a"),
    ("gesv: B row mismatch",
     lambda: la_gesv(np.eye(3), np.ones(4)), "la_gesv", "b"),
    ("gesv: ipiv wrong length",
     lambda: la_gesv(np.eye(3), np.ones(3), ipiv=np.zeros(2, np.int64)),
     "la_gesv", "ipiv"),
    ("gbsv: ab not 2-D",
     lambda: la_gbsv(np.ones(4), np.ones(4)), "la_gbsv", "ab"),
    ("gbsv: b mismatch",
     lambda: la_gbsv(np.ones((4, 5)), np.ones(3), kl=1), "la_gbsv", "b"),
    ("gtsv: dl wrong length",
     lambda: la_gtsv(np.ones(3), np.ones(3), np.ones(2), np.ones(3)),
     "la_gtsv", "dl"),
    ("gtsv: du wrong length",
     lambda: la_gtsv(np.ones(2), np.ones(3), np.ones(3), np.ones(3)),
     "la_gtsv", "du"),
    ("gtsv: b mismatch",
     lambda: la_gtsv(np.ones(2), np.ones(3), np.ones(2), np.ones(4)),
     "la_gtsv", "b"),
    ("posv: bad uplo",
     lambda: la_posv(np.eye(3), np.ones(3), uplo="X"), "la_posv", "uplo"),
    ("posv: A not square",
     lambda: la_posv(np.ones((3, 2)), np.ones(3)), "la_posv", "a"),
    ("ppsv: packed length wrong",
     lambda: la_ppsv(np.ones(5), np.ones(3)), "la_ppsv", "ap"),
    ("ppsv: bad uplo",
     lambda: la_ppsv(np.ones(6), np.ones(3), uplo="Q"), "la_ppsv", "uplo"),
    ("pbsv: ab not 2-D",
     lambda: la_pbsv(np.ones(3), np.ones(3)), "la_pbsv", "ab"),
    ("pbsv: b mismatch",
     lambda: la_pbsv(np.ones((2, 5)), np.ones(4)), "la_pbsv", "b"),
    ("ptsv: e wrong length",
     lambda: la_ptsv(np.ones(4), np.ones(4), np.ones(4)), "la_ptsv", "e"),
    ("ptsv: b mismatch",
     lambda: la_ptsv(np.ones(4), np.ones(3), np.ones(5)), "la_ptsv", "b"),
    ("sysv: bad uplo",
     lambda: la_sysv(np.eye(3), np.ones(3), uplo="Z"), "la_sysv", "uplo"),
    ("sysv: ipiv wrong",
     lambda: la_sysv(np.eye(3), np.ones(3), ipiv=np.zeros(9, np.int64)),
     "la_sysv", "ipiv"),
    ("hesv: A not square",
     lambda: la_hesv(np.ones((2, 3), complex), np.ones(2, complex)),
     "la_hesv", "a"),
    ("spsv: packed length",
     lambda: la_spsv(np.ones(4), np.ones(3)), "la_spsv", "ap"),
    ("syev: bad jobz",
     lambda: la_syev(np.eye(3) * 1.0, jobz="Q"), "la_syev", "jobz"),
    ("syev: bad uplo",
     lambda: la_syev(np.eye(3) * 1.0, uplo="Q"), "la_syev", "uplo"),
    ("syev: w wrong length",
     lambda: la_syev(np.eye(3) * 1.0, w=np.zeros(2)), "la_syev", "w"),
    ("heev: A not square",
     lambda: la_heev(np.ones((2, 3), complex)), "la_heev", "a"),
    ("sygv: bad itype",
     lambda: la_sygv(np.eye(3), np.eye(3), itype=4), "la_sygv", "itype"),
    ("gels: bad trans",
     lambda: la_gels(np.ones((4, 2)), np.ones(4), trans="Q"),
     "la_gels", "trans"),
]


@pytest.mark.parametrize("desc,call,driver,arg",
                         CASES, ids=[c[0] for c in CASES])
def test_error_exit_raises(desc, call, driver, arg):
    with pytest.raises(IllegalArgument) as e:
        call()
    assert e.value.info == _code(driver, arg)


def test_info_records_for_each_family():
    """Representative info= path per driver family."""
    info = Info()
    la_gesv(np.ones((2, 3)), np.ones(2), info=info)
    assert info == _code("la_gesv", "a")
    la_gbsv(np.ones(4), np.ones(4), info=info)
    assert info == _code("la_gbsv", "ab")
    la_gtsv(np.ones(3), np.ones(3), np.ones(2), np.ones(3), info=info)
    assert info == _code("la_gtsv", "dl")
    la_posv(np.eye(3), np.ones(3), uplo="X", info=info)
    assert info == _code("la_posv", "uplo")
    la_ppsv(np.ones(5), np.ones(3), info=info)
    assert info == _code("la_ppsv", "ap")
    la_pbsv(np.ones(3), np.ones(3), info=info)
    assert info == _code("la_pbsv", "ab")
    la_ptsv(np.ones(4), np.ones(4), np.ones(4), info=info)
    assert info == _code("la_ptsv", "e")
    la_sysv(np.eye(3), np.ones(3), uplo="Z", info=info)
    assert info == _code("la_sysv", "uplo")
    la_spsv(np.ones(4), np.ones(3), info=info)
    assert info == _code("la_spsv", "ap")
    la_syev(np.eye(3) * 1.0, jobz="Q", info=info)
    assert info == _code("la_syev", "jobz")
    la_sygv(np.eye(3), np.eye(3), itype=9, info=info)
    assert info == _code("la_sygv", "itype")
