"""Error-exit sweep across the whole linear-equation catalogue — the
Section 6 methodology generalized beyond LA_GESV: every driver reports
a negative code through info= and raises IllegalArgument without it."""

import numpy as np
import pytest

from repro import (Info, IllegalArgument, la_gbsv, la_gels, la_gesv,
                   la_gtsv, la_heev, la_hesv, la_pbsv, la_posv, la_ppsv,
                   la_ptsv, la_spsv, la_syev, la_sysv, la_sygv)

# (call, expected-negative-position)
CASES = [
    ("gesv: A not square",
     lambda: la_gesv(np.ones((2, 3)), np.ones(2)), -1),
    ("gesv: B row mismatch",
     lambda: la_gesv(np.eye(3), np.ones(4)), -2),
    ("gesv: ipiv wrong length",
     lambda: la_gesv(np.eye(3), np.ones(3), ipiv=np.zeros(2, np.int64)),
     -3),
    ("gbsv: ab not 2-D",
     lambda: la_gbsv(np.ones(4), np.ones(4)), -1),
    ("gbsv: b mismatch",
     lambda: la_gbsv(np.ones((4, 5)), np.ones(3), kl=1), -2),
    ("gtsv: dl wrong length",
     lambda: la_gtsv(np.ones(3), np.ones(3), np.ones(2), np.ones(3)), -1),
    ("gtsv: du wrong length",
     lambda: la_gtsv(np.ones(2), np.ones(3), np.ones(3), np.ones(3)), -3),
    ("gtsv: b mismatch",
     lambda: la_gtsv(np.ones(2), np.ones(3), np.ones(2), np.ones(4)), -4),
    ("posv: bad uplo",
     lambda: la_posv(np.eye(3), np.ones(3), uplo="X"), -3),
    ("posv: A not square",
     lambda: la_posv(np.ones((3, 2)), np.ones(3)), -1),
    ("ppsv: packed length wrong",
     lambda: la_ppsv(np.ones(5), np.ones(3)), -1),
    ("ppsv: bad uplo",
     lambda: la_ppsv(np.ones(6), np.ones(3), uplo="Q"), -3),
    ("pbsv: ab not 2-D",
     lambda: la_pbsv(np.ones(3), np.ones(3)), -1),
    ("pbsv: b mismatch",
     lambda: la_pbsv(np.ones((2, 5)), np.ones(4)), -2),
    ("ptsv: e wrong length",
     lambda: la_ptsv(np.ones(4), np.ones(4), np.ones(4)), -2),
    ("ptsv: b mismatch",
     lambda: la_ptsv(np.ones(4), np.ones(3), np.ones(5)), -3),
    ("sysv: bad uplo",
     lambda: la_sysv(np.eye(3), np.ones(3), uplo="Z"), -3),
    ("sysv: ipiv wrong",
     lambda: la_sysv(np.eye(3), np.ones(3), ipiv=np.zeros(9, np.int64)),
     -4),
    ("hesv: A not square",
     lambda: la_hesv(np.ones((2, 3), complex), np.ones(2, complex)), -1),
    ("spsv: packed length",
     lambda: la_spsv(np.ones(4), np.ones(3)), -1),
    ("syev: bad jobz",
     lambda: la_syev(np.eye(3) * 1.0, jobz="Q"), -3),
    ("syev: bad uplo",
     lambda: la_syev(np.eye(3) * 1.0, uplo="Q"), -4),
    ("syev: w wrong length",
     lambda: la_syev(np.eye(3) * 1.0, w=np.zeros(2)), -2),
    ("heev: A not square",
     lambda: la_heev(np.ones((2, 3), complex)), -1),
    ("sygv: bad itype",
     lambda: la_sygv(np.eye(3), np.eye(3), itype=4), -4),
    ("gels: bad trans",
     lambda: la_gels(np.ones((4, 2)), np.ones(4), trans="Q"), -3),
]


@pytest.mark.parametrize("desc,call,expect",
                         CASES, ids=[c[0] for c in CASES])
def test_error_exit_raises(desc, call, expect):
    with pytest.raises(IllegalArgument) as e:
        call()
    assert e.value.info == expect


def test_info_records_for_each_family():
    """Representative info= path per driver family."""
    info = Info()
    la_gesv(np.ones((2, 3)), np.ones(2), info=info)
    assert info == -1
    la_gbsv(np.ones(4), np.ones(4), info=info)
    assert info == -1
    la_gtsv(np.ones(3), np.ones(3), np.ones(2), np.ones(3), info=info)
    assert info == -1
    la_posv(np.eye(3), np.ones(3), uplo="X", info=info)
    assert info == -3
    la_ppsv(np.ones(5), np.ones(3), info=info)
    assert info == -1
    la_pbsv(np.ones(3), np.ones(3), info=info)
    assert info == -1
    la_ptsv(np.ones(4), np.ones(4), np.ones(4), info=info)
    assert info == -2
    la_sysv(np.eye(3), np.ones(3), uplo="Z", info=info)
    assert info == -3
    la_spsv(np.ones(4), np.ones(3), info=info)
    assert info == -1
    la_syev(np.eye(3) * 1.0, jobz="Q", info=info)
    assert info == -3
    la_sygv(np.eye(3), np.eye(3), itype=9, info=info)
    assert info == -4
