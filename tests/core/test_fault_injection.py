"""Deterministic fault injection: every ERINFO reporting branch —
NaN input, zero pivot / forced non-convergence, workspace failure —
exercised for the six acceptance driver families."""

import numpy as np
import pytest

from repro import Info, NonFiniteInput, exception_policy, set_policy
from repro.core import (la_gbsv, la_gels, la_gesv, la_gesvd, la_posv,
                        la_syev)
from repro.errors import (ALLOC_FAILED, ComputationalError, NoConvergence,
                          NotPositiveDefinite, SingularMatrix,
                          WorkspaceError)
from repro.testing import faultinject as fi

from ..conftest import spd_matrix, well_conditioned


@pytest.fixture(autouse=True)
def _clean_slate():
    yield
    fi.clear()
    set_policy(nonfinite="propagate", rcond_guard="silent", fallbacks=False)


def _band(n=5, kl=1, ku=1, dtype=np.float64):
    ab = np.zeros((2 * kl + ku + 1, n), dtype=dtype)
    ab[kl + ku, :] = 4.0
    ab[kl + ku - 1, 1:] = 1.0
    ab[kl + ku + 1, :-1] = 1.0
    return ab


#: (name, srname, build (a, b) call args, expected primary-failure error)
FAMILIES = [
    ("gesv", "la_gesv",
     lambda rng: (well_conditioned(rng, 5, np.float64), np.ones(5)),
     lambda a, b, info: la_gesv(a, b, info=info)),
    ("posv", "la_posv",
     lambda rng: (spd_matrix(rng, 5, np.float64), np.ones(5)),
     lambda a, b, info: la_posv(a, b, info=info)),
    ("gbsv", "la_gbsv",
     lambda rng: (_band(), np.ones(5)),
     lambda a, b, info: la_gbsv(a, b, kl=1, info=info)),
    ("gels", "la_gels",
     lambda rng: (well_conditioned(rng, 5, np.float64)[:, :3].copy(),
                  np.ones(5)),
     lambda a, b, info: la_gels(a, b, info=info)),
    ("syev", "la_syev",
     lambda rng: (spd_matrix(rng, 5, np.float64), None),
     lambda a, b, info: la_syev(a, info=info)),
    ("gesvd", "la_gesvd",
     lambda rng: (well_conditioned(rng, 5, np.float64), None),
     lambda a, b, info: la_gesvd(a, info=info)),
]

IDS = [f[0] for f in FAMILIES]


@pytest.mark.parametrize("name,srname,build,call", FAMILIES, ids=IDS)
class TestPerFamily:
    def test_nan_input_raises_in_check_mode(self, rng, name, srname,
                                            build, call):
        a, b = build(rng)
        fi.inject_nonfinite(a)
        with exception_policy(nonfinite="check"):
            with pytest.raises(NonFiniteInput) as e:
                call(a, b, None)
        assert e.value.position == 1

    def test_nan_input_recorded_on_info(self, rng, name, srname, build,
                                        call):
        a, b = build(rng)
        fi.inject_nonfinite(a, value=np.inf)
        info = Info()
        with exception_policy(nonfinite="check"):
            call(a, b, info)
        assert info.value == -1001

    def test_workspace_failure_raises(self, rng, name, srname, build, call):
        a, b = build(rng)
        with fi.injected(srname, alloc=True):
            with pytest.raises(WorkspaceError) as e:
                call(a, b, None)
        assert e.value.info == ALLOC_FAILED

    def test_workspace_failure_recorded_on_info(self, rng, name, srname,
                                                build, call):
        a, b = build(rng)
        info = Info()
        with fi.injected(srname, alloc=True):
            call(a, b, info)
        assert info.value == ALLOC_FAILED

    def test_fault_does_not_outlive_context(self, rng, name, srname, build,
                                            call):
        a, b = build(rng)
        with fi.injected(srname, alloc=True):
            pass
        call(a, b, None)  # clean run — the fault was disarmed
        assert not fi.active()


class TestComputationalFaults:
    """Zero-pivot (factorization families) and forced-status
    (orthogonal/iterative families) injection."""

    def test_gesv_zero_pivot(self, rng):
        a = well_conditioned(rng, 5, np.float64)
        info = Info()
        with fi.injected("getf2", zero_pivot=2):
            la_gesv(a, np.ones(5), info=info)
        assert info.value == 3  # 1-based: U[2, 2] exactly zero

    def test_gesv_zero_pivot_raises(self, rng):
        a = well_conditioned(rng, 5, np.float64)
        with fi.injected("getf2", zero_pivot=0):
            with pytest.raises(SingularMatrix) as e:
                la_gesv(a, np.ones(5))
        assert e.value.info == 1

    def test_posv_zero_pivot(self, rng):
        a = spd_matrix(rng, 5, np.float64)
        info = Info()
        with fi.injected("potf2", zero_pivot=1):
            la_posv(a, np.ones(5), info=info)
        assert info.value == 2

    def test_posv_zero_pivot_raises(self, rng):
        a = spd_matrix(rng, 4, np.float64)
        with fi.injected("potf2", zero_pivot=3):
            with pytest.raises(NotPositiveDefinite):
                la_posv(a, np.ones(4))

    def test_gbsv_zero_pivot(self, rng):
        info = Info()
        with fi.injected("gbtrf", zero_pivot=1):
            la_gbsv(_band(), np.ones(5), kl=1, info=info)
        assert info.value == 2

    def test_gels_forced_failure(self, rng):
        a = well_conditioned(rng, 5, np.float64)[:, :3].copy()
        info = Info()
        with fi.injected("gels", linfo=7):
            la_gels(a, np.ones(5), info=info)
        assert info.value == 7
        with fi.injected("gels", linfo=7):
            with pytest.raises(ComputationalError):
                la_gels(a.copy(), np.ones(5))

    def test_syev_forced_no_convergence(self, rng):
        a = spd_matrix(rng, 5, np.float64)
        info = Info()
        with fi.injected("syev", linfo=4):
            la_syev(a.copy(), info=info)
        assert info.value == 4
        with fi.injected("syev", linfo=4):
            with pytest.raises(NoConvergence):
                la_syev(a.copy())

    def test_heev_forced_no_convergence(self, rng):
        from repro.core import la_heev
        a = spd_matrix(rng, 4, np.complex128)
        with fi.injected("heev", linfo=2):
            with pytest.raises(NoConvergence):
                la_heev(a)

    def test_gesvd_forced_no_convergence(self, rng):
        a = well_conditioned(rng, 5, np.float64)
        info = Info()
        with fi.injected("gesvd", linfo=3):
            la_gesvd(a.copy(), info=info)
        assert info.value == 3
        with fi.injected("gesvd", linfo=3):
            with pytest.raises(NoConvergence):
                la_gesvd(a.copy())


class TestRegistryMechanics:
    def test_count_limits_firing(self, rng):
        fi.install("la_gesv", alloc=True, count=1)
        a = well_conditioned(rng, 4, np.float64)
        info = Info()
        la_gesv(a.copy(), np.ones(4), info=info)
        assert info.value == ALLOC_FAILED
        # Second call: the fault has disarmed itself.
        info2 = Info()
        la_gesv(a.copy(), np.ones(4), info=info2)
        assert info2.value == 0

    def test_zero_pivot_at_step_zero_installable(self):
        # Regression: step 0 must not be treated as "no fault".
        fi.install("getf2", zero_pivot=0)
        assert fi.pivot_fault("getf2", 0)

    def test_routine_names_case_insensitive(self):
        fi.install("LA_GESV", alloc=True)
        assert fi.alloc_fault("la_gesv")

    def test_clear_disarms_everything(self):
        fi.install("getf2", zero_pivot=1)
        fi.install("la_posv", alloc=True)
        fi.clear()
        assert not fi.active()

    def test_inject_nonfinite_rejects_finite_poison(self):
        with pytest.raises(ValueError):
            fi.inject_nonfinite(np.ones(3), value=1.0)

    def test_inject_nonfinite_custom_index(self):
        a = np.ones((3, 3))
        fi.inject_nonfinite(a, value=-np.inf, index=(2, 1))
        assert np.isneginf(a[2, 1])
        assert np.isfinite(a[0, 0])
