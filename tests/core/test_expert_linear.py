"""Expert drivers: condition estimates, refinement, error bounds,
equilibration, factor reuse."""

import numpy as np
import pytest

from repro import Info
from repro.core import (la_gbsvx, la_gesvx, la_gtsvx, la_hesvx, la_hpsvx,
                        la_pbsvx, la_posvx, la_ppsvx, la_ptsvx, la_spsvx,
                        la_sysvx)
from repro.storage import full_to_band, full_to_sym_band, pack

from ..conftest import (rand_matrix, rand_vector, spd_matrix, tol_for,
                        well_conditioned)


class TestLaGesvx:
    def test_basic_solve_and_bounds(self, rng, dtype):
        n, nrhs = 20, 2
        a0 = well_conditioned(rng, n, dtype)
        x_true = rand_matrix(rng, n, nrhs, dtype)
        b = (a0 @ x_true).astype(dtype)
        res = la_gesvx(a0.copy(), b)
        np.testing.assert_allclose(res.x, x_true, rtol=tol_for(dtype, 1e4),
                                   atol=tol_for(dtype, 1e4))
        # True error within the forward bound (with slack).
        err = np.max(np.abs(res.x - x_true), axis=0) \
            / np.max(np.abs(x_true), axis=0)
        assert np.all(err <= res.ferr * 10 + tol_for(dtype))
        assert np.all(res.berr <= 100 * np.finfo(
            np.dtype(dtype)).eps)
        true_rcond = 1 / np.linalg.cond(a0.astype(complex), 1).real
        assert true_rcond / 10 <= res.rcond <= true_rcond * 10

    def test_b_preserved(self, rng):
        n = 8
        a = well_conditioned(rng, n, np.float64)
        b = rand_vector(rng, n, np.float64)
        b0 = b.copy()
        la_gesvx(a.copy(), b)
        np.testing.assert_array_equal(b, b0)

    @pytest.mark.parametrize("trans", ["N", "T", "C"])
    def test_trans(self, rng, trans):
        n = 15
        a0 = well_conditioned(rng, n, np.complex128)
        op = {"N": a0, "T": a0.T, "C": np.conj(a0.T)}[trans]
        x_true = rand_vector(rng, n, np.complex128)
        b = op @ x_true
        res = la_gesvx(a0.copy(), b, trans=trans)
        np.testing.assert_allclose(res.x, x_true, atol=1e-9)

    def test_equilibration_path(self, rng):
        n = 10
        a0 = well_conditioned(rng, n, np.float64)
        a0[0] *= 1e9   # terrible row scaling
        x_true = rand_vector(rng, n, np.float64)
        b = a0 @ x_true
        res = la_gesvx(a0.copy(), b, fact="E")
        assert res.equed in ("R", "B")
        np.testing.assert_allclose(res.x, x_true, rtol=1e-8, atol=1e-8)

    def test_factor_reuse(self, rng):
        n = 12
        a0 = well_conditioned(rng, n, np.float64)
        b1 = rand_vector(rng, n, np.float64)
        res1 = la_gesvx(a0.copy(), b1)
        # Re-solve a new RHS with fact='F' reusing res1.af/ipiv.
        b2 = rand_vector(rng, n, np.float64)
        res2 = la_gesvx(a0.copy(), b2, af=res1.af, ipiv=res1.ipiv,
                        fact="F")
        ref = np.linalg.solve(a0, b2)
        np.testing.assert_allclose(res2.x, ref, atol=1e-9)

    def test_singular_to_working_precision(self, rng):
        n = 8
        a = rand_matrix(rng, n, n, np.float64)
        a[:, -1] = a[:, 0] * (1 + 1e-16)  # numerically singular
        b = rand_vector(rng, n, np.float64)
        info = Info()
        res = la_gesvx(a, b, info=info)
        assert info.value == n + 1 or res.rcond < 1e-14

    def test_rpvgrw_reported(self, rng):
        a = well_conditioned(rng, 6, np.float64)
        res = la_gesvx(a.copy(), rand_vector(rng, 6, np.float64))
        assert res.rpvgrw is not None and res.rpvgrw > 0


def test_la_gbsvx(rng, dtype):
    n, kl, ku = 18, 2, 1
    a = rand_matrix(rng, n, n, dtype)
    for i in range(n):
        for j in range(n):
            if j - i > ku or i - j > kl:
                a[i, j] = 0
    a[np.diag_indices(n)] += 4
    ab = full_to_band(a, kl, ku)
    x_true = rand_vector(rng, n, dtype)
    b = (a @ x_true).astype(dtype)
    res = la_gbsvx(ab, b, kl=kl)
    np.testing.assert_allclose(res.x, x_true, rtol=tol_for(dtype, 1e4),
                               atol=tol_for(dtype, 1e4))
    assert res.rcond > 0
    assert np.all(res.berr < 1e-4)


def test_la_gtsvx(rng, dtype):
    n = 16
    dl = rand_vector(rng, n - 1, dtype)
    d = rand_vector(rng, n, dtype) + 4
    du = rand_vector(rng, n - 1, dtype)
    a = np.diag(d) + np.diag(dl, -1) + np.diag(du, 1)
    x_true = rand_vector(rng, n, dtype)
    b = (a @ x_true).astype(dtype)
    res = la_gtsvx(dl, d, du, b)
    np.testing.assert_allclose(res.x, x_true, rtol=tol_for(dtype, 1e4),
                               atol=tol_for(dtype, 1e4))
    assert res.rcond > 0
    # Original diagonals preserved (factors go into res.factors).
    np.testing.assert_allclose(np.diag(a), d)


@pytest.mark.parametrize("uplo", ["U", "L"])
def test_la_posvx(rng, dtype, uplo):
    n = 14
    a0 = spd_matrix(rng, n, dtype)
    x_true = rand_vector(rng, n, dtype)
    b = (a0 @ x_true).astype(dtype)
    res = la_posvx(a0.copy(), b, uplo=uplo)
    np.testing.assert_allclose(res.x, x_true, rtol=tol_for(dtype, 1e4),
                               atol=tol_for(dtype, 1e4))
    true_rcond = 1 / np.linalg.cond(a0.astype(complex), 1).real
    assert true_rcond / 10 <= res.rcond <= true_rcond * 10


def test_la_posvx_equilibration(rng):
    n = 8
    a0 = spd_matrix(rng, n, np.float64)
    a0[0, :] *= 1e6
    a0[:, 0] *= 1e6   # keep symmetric: diag[0] *= 1e12
    x_true = rand_vector(rng, n, np.float64)
    b = a0 @ x_true
    res = la_posvx(a0.copy(), b, fact="E")
    assert res.equed == "Y"
    np.testing.assert_allclose(res.x, x_true, rtol=1e-7, atol=1e-7)


def test_la_ppsvx(rng):
    n = 10
    a = spd_matrix(rng, n, np.float64)
    ap = pack(a, "U")
    x_true = rand_vector(rng, n, np.float64)
    b = a @ x_true
    res = la_ppsvx(ap, b)
    np.testing.assert_allclose(res.x, x_true, atol=1e-9)
    assert res.rcond > 0


def test_la_pbsvx(rng):
    n, kd = 12, 2
    a = spd_matrix(rng, n, np.float64)
    for i in range(n):
        for j in range(n):
            if abs(i - j) > kd:
                a[i, j] = 0
    a[np.diag_indices(n)] += n
    ab = full_to_sym_band(a, kd, "U")
    x_true = rand_vector(rng, n, np.float64)
    b = a @ x_true
    res = la_pbsvx(ab, b)
    np.testing.assert_allclose(res.x, x_true, atol=1e-9)


def test_la_ptsvx(rng):
    n = 12
    e = rand_vector(rng, n - 1, np.float64)
    d = np.abs(rand_vector(rng, n, np.float64)) + 3
    a = np.diag(d) + np.diag(e, -1) + np.diag(e, 1)
    x_true = rand_vector(rng, n, np.float64)
    b = a @ x_true
    res = la_ptsvx(d, e, b)
    np.testing.assert_allclose(res.x, x_true, atol=1e-9)
    assert res.rcond > 0


@pytest.mark.parametrize("uplo", ["U", "L"])
def test_la_sysvx(rng, uplo):
    n = 12
    a = rand_matrix(rng, n, n, np.float64)
    a = a + a.T
    a[np.diag_indices(n)] += np.arange(n) - n / 2
    x_true = rand_vector(rng, n, np.float64)
    b = a @ x_true
    res = la_sysvx(a.copy(), b, uplo=uplo)
    np.testing.assert_allclose(res.x, x_true, atol=1e-8)
    true_rcond = 1 / np.linalg.cond(a, 1)
    assert true_rcond / 20 <= res.rcond <= true_rcond * 20


def test_la_hesvx(rng):
    n = 10
    a = rand_matrix(rng, n, n, np.complex128)
    a = a + np.conj(a.T)
    np.fill_diagonal(a, a.diagonal().real + np.arange(n) - n / 2)
    x_true = rand_vector(rng, n, np.complex128)
    b = a @ x_true
    res = la_hesvx(a.copy(), b)
    np.testing.assert_allclose(res.x, x_true, atol=1e-8)


def test_la_spsvx_la_hpsvx(rng):
    n = 9
    a = rand_matrix(rng, n, n, np.float64)
    a = a + a.T
    a[np.diag_indices(n)] += np.arange(n) - n / 2
    ap = pack(a, "U")
    x_true = rand_vector(rng, n, np.float64)
    b = a @ x_true
    res = la_spsvx(ap, b)
    np.testing.assert_allclose(res.x, x_true, atol=1e-8)
    h = rand_matrix(rng, n, n, np.complex128)
    h = h + np.conj(h.T)
    np.fill_diagonal(h, h.diagonal().real + np.arange(n) - n / 2)
    hp = pack(h, "U")
    xc = rand_vector(rng, n, np.complex128)
    bc = h @ xc
    res2 = la_hpsvx(hp, bc)
    np.testing.assert_allclose(res2.x, xc, atol=1e-8)
