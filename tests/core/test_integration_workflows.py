"""Cross-layer integration: multi-step workflows a downstream user would
actually run, combining computational routines, drivers and the testing
machinery."""

import numpy as np
import pytest

from repro import (Info, f77, la_geequ, la_gees, la_geev, la_gelss,
                   la_gerfs, la_gesv, la_gesvd, la_getrf, la_getri,
                   la_getrs, la_lagge, la_lange, la_orgtr, la_potrf,
                   la_syev, la_sytrd)
from repro.testing import residual_ratio

from ..conftest import rand_matrix, rand_vector, spd_matrix, \
    well_conditioned


@pytest.fixture
def rng():
    return np.random.default_rng(2026)


def test_factor_once_solve_many(rng):
    """The factor/solve separation: one LA_GETRF, many LA_GETRS."""
    n = 30
    a0 = well_conditioned(rng, n, np.float64)
    af = a0.copy()
    ipiv, rcond = la_getrf(af, rcond=True)
    assert 0 < rcond <= 1
    for trial in range(4):
        x_true = rand_vector(rng, n, np.float64)
        b = a0 @ x_true
        la_getrs(af, ipiv, b)
        np.testing.assert_allclose(b, x_true, atol=1e-9)
    # Transpose solves from the same factorization.
    x_true = rand_vector(rng, n, np.float64)
    b = a0.T @ x_true
    la_getrs(af, ipiv, b, trans="T")
    np.testing.assert_allclose(b, x_true, atol=1e-9)


def test_solve_refine_invert_chain(rng):
    """Solve, refine the solution, then invert — all from one factor."""
    n = 25
    a0 = well_conditioned(rng, n, np.float64)
    af = a0.copy()
    ipiv, _ = la_getrf(af)
    x_true = rand_vector(rng, n, np.float64)
    b = a0 @ x_true
    x = b.copy()
    la_getrs(af, ipiv, x)
    ferr, berr = la_gerfs(a0, af, ipiv, b, x)
    assert np.all(berr < 1e-13)
    np.testing.assert_allclose(x, x_true, atol=1e-10)
    la_getri(af, ipiv)
    np.testing.assert_allclose(af @ a0, np.eye(n), atol=1e-9)
    # The inverse agrees with the solve.
    np.testing.assert_allclose(af @ b, x_true, atol=1e-9)


def test_equilibrate_then_solve(rng):
    """Manual equilibration via LA_GEEQU mirrors LA_GESVX's fact='E'."""
    n = 15
    a0 = well_conditioned(rng, n, np.float64)
    a0[0] *= 1e10
    r, c, rowcnd, colcnd, amax = la_geequ(a0)
    scaled = a0 * np.outer(r, c)
    assert np.abs(scaled).max() <= 1 + 1e-12
    x_true = rand_vector(rng, n, np.float64)
    b = a0 @ x_true
    bs = b * r
    la_gesv(scaled.copy(), bs)
    x = bs * c
    np.testing.assert_allclose(x, x_true, rtol=1e-9, atol=1e-9)


def test_tridiagonalize_and_verify_with_orgtr(rng):
    """LA_SYTRD + LA_ORGTR + LA_SYEV consistency on one matrix."""
    n = 16
    a0 = rand_matrix(rng, n, n, np.float64)
    a0 = a0 + a0.T
    a = a0.copy()
    d, e, tau = la_sytrd(a, uplo="L")
    q = a.copy()
    la_orgtr(q, tau, uplo="L")
    t = np.diag(d) + np.diag(e, 1) + np.diag(e, -1)
    np.testing.assert_allclose(q.T @ a0 @ q, t, atol=1e-10)
    # The tridiagonal's spectrum is the matrix's spectrum.
    w = la_syev(a0.copy())
    np.testing.assert_allclose(np.linalg.eigvalsh(t), w, atol=1e-9)


def test_generated_matrix_through_full_pipeline(rng):
    """LA_LAGGE → LA_GESVD → LA_GELSS: the generator's prescribed
    spectrum survives the whole chain."""
    m, n = 20, 12
    d = np.geomspace(1.0, 1e-3, n)
    a = np.zeros((m, n))
    la_lagge(a, d=d, iseed=7)
    s = la_gesvd(a.copy())
    np.testing.assert_allclose(s, d, rtol=1e-8)
    # Least squares on it: rank at the 1e-2 threshold.
    b = rand_vector(rng, m, np.float64)
    x, rank, s2 = la_gelss(a.copy(), b.copy(), rcond=1e-2)
    assert rank == int(np.sum(d > 1e-2 * d[0]))


def test_schur_eigen_consistency(rng):
    """LA_GEES and LA_GEEV agree on the spectrum; Schur form norms are
    preserved (unitary similarity)."""
    n = 18
    a0 = rand_matrix(rng, n, n, np.float64)
    t = a0.copy()
    w_schur, sdim = la_gees(t)
    w_eig = la_geev(a0.copy())
    ws = np.sort_complex(np.round(w_schur, 9))
    we = np.sort_complex(np.round(w_eig, 9))
    np.testing.assert_allclose(ws, we, atol=1e-7)
    # Frobenius norm invariant under the unitary similarity.
    assert np.isclose(la_lange(t, "F"), la_lange(a0, "F"), rtol=1e-10)


def test_f77_and_f90_layers_share_substrate(rng):
    """Both layers produce bit-identical factors (paper Example 3's
    premise)."""
    n = 12
    a0 = well_conditioned(rng, n, np.float64)
    b0 = rand_matrix(rng, n, 2, np.float64)
    a1, b1 = a0.copy(), b0.copy()
    ipiv1 = np.zeros(n, dtype=np.int64)
    f77.la_gesv(n, 2, a1, n, ipiv1, b1, n)
    a2, b2 = a0.copy(), b0.copy()
    ipiv2 = np.zeros(n, dtype=np.int64)
    la_gesv(a2, b2, ipiv=ipiv2)
    np.testing.assert_array_equal(a1, a2)
    np.testing.assert_array_equal(b1, b2)
    np.testing.assert_array_equal(ipiv1, ipiv2)


def test_residual_ratio_consistent_across_drivers(rng):
    """The Appendix-F metric stays below threshold for every dense
    solver family on the same system."""
    from repro import la_posv, la_sysv
    n = 40
    spd = spd_matrix(rng, n, np.float64)
    b0 = rand_matrix(rng, n, 3, np.float64)
    for solver, mat in [(la_gesv, spd), (la_posv, spd), (la_sysv, spd)]:
        b = b0.copy()
        solver(mat.copy(), b)
        assert residual_ratio(mat, b, b0) < 10.0


def test_info_object_reuse_across_calls(rng):
    """One Info handle through a whole workflow, LAPACK90 style."""
    info = Info()
    n = 8
    a = well_conditioned(rng, n, np.float64)
    b = rand_vector(rng, n, np.float64)
    la_gesv(a.copy(), b.copy(), info=info)
    assert info == 0
    la_gesv(np.ones((n, n)), b.copy(), info=info)
    assert info.value > 0            # singular
    la_gesv(a.copy(), rand_vector(rng, n + 1, np.float64), info=info)
    assert info.value == -2          # bad shape
    la_gesv(a.copy(), b.copy(), info=info)
    assert info == 0                 # reset on success


def test_complex_hermitian_full_stack(rng):
    """Hermitian chain in complex128: HESV solve, HEEV spectrum,
    POTRF-based generalized reduction."""
    from repro import la_hegv, la_hesv
    n = 14
    h = rand_matrix(rng, n, n, np.complex128)
    h = h + np.conj(h.T)
    np.fill_diagonal(h, h.diagonal().real + np.arange(n) - n / 2)
    x_true = rand_vector(rng, n, np.complex128)
    b = h @ x_true
    la_hesv(h.copy(), b)
    np.testing.assert_allclose(b, x_true, atol=1e-8)
    spd = spd_matrix(rng, n, np.complex128)
    sla = pytest.importorskip("scipy.linalg")
    w = la_hegv(h.copy(), spd.copy())
    ref = sla.eigh(h, spd, eigvals_only=True)
    np.testing.assert_allclose(w, ref, atol=1e-8)
