"""Info attempts/breaker telemetry and healthcheck() reporting."""

import numpy as np
import pytest

import repro
from repro import Info, healthcheck, la_gesv
from repro.errors import DEADLINE, DeadlineExceeded, erinfo
from repro.resilience import (get_resilience, reset_breakers,
                              resilience_policy, set_resilience)
from repro.testing import faultinject as fi


@pytest.fixture(autouse=True)
def _clean_state():
    yield
    fi.chaos_clear()
    reset_breakers()


# -- Info repr/hash/equality with the new fields ----------------------

def test_plain_info_repr_is_unchanged():
    assert repr(Info(2)) == "Info(2)"
    assert repr(Info(0)) == "Info(0)"


def test_repr_includes_attempts_and_breaker_when_set():
    info = Info(0)
    info.attempts = ("reference:gesv#1:error=InjectedFault",
                     "reference:gesv#2")
    info.breaker = "open:accelerated:gesv"
    r = repr(info)
    assert r.startswith("Info(0")
    assert "attempts=" in r and "reference:gesv#2" in r
    assert "breaker='open:accelerated:gesv'" in r


def test_equality_and_hash_ignore_telemetry_fields():
    clean = Info(0)
    noisy = Info(0)
    noisy.attempts = ("reference:gesv#1:error=InjectedFault",
                      "reference:gesv#2")
    noisy.breaker = "open:accelerated:gesv"
    # Telemetry is timing-dependent; the outcome is what equality means.
    assert clean == noisy
    assert hash(clean) == hash(noisy)
    assert noisy == 0
    assert len({clean, noisy}) == 1


def test_telemetry_from_a_real_call_round_trips_through_repr():
    fi.chaos_install("gesv", fail_next=1)
    with resilience_policy(retries=1):
        a = np.array([[4.0, 1.0], [1.0, 3.0]])
        b = a @ np.array([1.0, 2.0])
        info = Info()
        la_gesv(a, b, info=info)
    assert info.attempts is not None
    assert "attempts=" in repr(info)
    assert info == 0


def test_deadline_exceeded_carries_partial_info():
    exc = DeadlineExceeded("LA_GESV", stage="solve")
    assert exc.stage == "solve"
    assert int(exc.partial) == DEADLINE
    assert "'solve'" in str(exc)


def test_erinfo_classifies_deadline_band():
    info = Info()
    with pytest.raises(DeadlineExceeded):
        erinfo(DEADLINE, "LA_GESV", None)
    # With an info handle the code is recorded, not raised.
    erinfo(DEADLINE, "LA_GESV", info)
    assert int(info) == DEADLINE


# -- healthcheck ------------------------------------------------------

def test_healthcheck_reports_backends_policy_and_breakers():
    report = healthcheck()
    assert set(report) == {"backends", "breakers", "policy", "dispatch"}
    assert report["backends"]["reference"]["ok"]
    assert report["backends"]["reference"]["residual"] < 1e-10
    assert report["breakers"] == {}
    pol = get_resilience()
    assert report["policy"] == {
        "retries": pol.retries,
        "breaker_threshold": pol.breaker_threshold,
        "breaker_cooldown": pol.breaker_cooldown,
        "warning_window": pol.warning_window,
    }
    # The front door's structure-cache counters ride along.
    cache = report["dispatch"]["structure_cache"]
    assert {"entries", "hits", "misses", "invalidated",
            "epoch"} <= set(cache)


def test_healthcheck_surfaces_a_sick_backend_without_raising():
    if "accelerated" not in repro.available_backends():
        pytest.skip("needs the accelerated backend registered")
    import warnings
    fi.chaos_install("gesv", flaky_every=1, backend="accelerated")
    with resilience_policy(retries=0):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            report = healthcheck()
    # The accelerated probe degraded to reference (escalation), so the
    # answer is still correct — healthcheck never raises.
    assert report["backends"]["accelerated"]["ok"]
    assert report["backends"]["reference"]["ok"]


# -- policy knobs -----------------------------------------------------

def test_set_resilience_validates():
    with pytest.raises(ValueError):
        set_resilience(retries=-1)
    with pytest.raises(ValueError):
        set_resilience(breaker_threshold=0)
    with pytest.raises(ValueError):
        set_resilience(breaker_cooldown=-0.1)
    with pytest.raises(ValueError):
        set_resilience(warning_window=-1.0)


def test_resilience_policy_scopes_and_restores():
    before = (get_resilience().retries, get_resilience().breaker_threshold)
    with resilience_policy(retries=7, breaker_threshold=9) as pol:
        assert pol.retries == 7
        assert get_resilience().breaker_threshold == 9
    assert (get_resilience().retries,
            get_resilience().breaker_threshold) == before
