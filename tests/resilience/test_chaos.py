"""The chaos harness itself: deterministic seam faults and the CI
profile's pass-through-degradation guarantee."""

import numpy as np
import pytest

from repro import Info, la_gesv, la_posv
from repro.faults import (CHAOS_DEFAULT_ROUTINES, chaos_active,
                          default_chaos_profile)
from repro.resilience import reset_breakers, resilience_policy
from repro.testing import faultinject as fi


@pytest.fixture(autouse=True)
def _clean_state():
    yield
    fi.chaos_clear()
    reset_breakers()


def _system(dtype=float):
    a = np.array([[4.0, 1.0, 0.0], [1.0, 3.0, 1.0], [0.0, 1.0, 2.0]],
                 dtype=dtype)
    return a, a @ np.array([1.0, -1.0, 2.0], dtype=dtype)


def test_chaos_install_validates_arguments():
    with pytest.raises(ValueError):
        fi.chaos_install("gesv")
    with pytest.raises(ValueError):
        fi.chaos_install("gesv", flaky_every=0)
    with pytest.raises(ValueError):
        fi.chaos_install("gesv", fail_next=1, error="bogus")


def test_flaky_every_k_is_deterministic():
    fi.chaos_install("gesv", flaky_every=3)
    failures = []
    with resilience_policy(retries=1):
        for i in range(6):
            a, b = _system()
            info = Info()
            la_gesv(a, b, info=info)
            failures.append(info.attempts is not None)
            assert np.allclose(b, [1.0, -1.0, 2.0])
    # Calls 1,2 clean; call 3 fires (then its retry is call 4, clean);
    # calls 5,6 land on counters 6 (fires, retry=7 clean) and 8.
    assert failures == [False, False, True, False, True, False]


def test_alloc_error_class_is_memoryerror():
    # Reference rung only and zero retries: the injected transient
    # allocation failure has nowhere to escalate and surfaces as-is.
    fi.chaos_install("gesv", fail_next=1, error="alloc")
    with resilience_policy(retries=0):
        a, b = _system()
        with pytest.raises(MemoryError):
            la_gesv(a, b)
    # With a retry budget the same fault is absorbed transparently.
    fi.chaos_install("gesv", fail_next=1, error="alloc")
    with resilience_policy(retries=1):
        a, b = _system()
        info = Info()
        la_gesv(a, b, info=info)
        assert np.allclose(b, [1.0, -1.0, 2.0])
        assert "MemoryError" in info.attempts[0]


def test_backend_filter_does_not_advance_counters():
    # A fault pinned to 'accelerated' never fires for reference calls
    # and, crucially, reference calls do not consume the counter.
    fi.chaos_install("gesv", fail_next=1, backend="accelerated")
    for _ in range(3):
        a, b = _system()
        info = Info()
        la_gesv(a, b, info=info, backend="reference")
        assert info.attempts is None
        assert np.allclose(b, [1.0, -1.0, 2.0])


def test_chaos_context_manager_disarms():
    with fi.chaos("gesv", fail_next=1):
        assert chaos_active()
    assert not chaos_active()


def test_default_profile_covers_hot_kernels_and_suite_degrades():
    default_chaos_profile(every=2)
    assert chaos_active()
    assert "gesv" in CHAOS_DEFAULT_ROUTINES
    assert "potrf" in CHAOS_DEFAULT_ROUTINES
    # Under the CI profile every second call of each hot kernel fails;
    # the default retry budget must absorb it transparently.
    for i in range(4):
        a, b = _system()
        la_gesv(a, b)
        assert np.allclose(b, [1.0, -1.0, 2.0])
        spd, bs = _system()
        la_posv(spd, bs)
        assert np.allclose(bs, [1.0, -1.0, 2.0])


def test_transient_failure_escapes_when_budget_and_rungs_exhaust():
    # Reference rung only, zero retries, persistent fault: the contract
    # is honest failure, not a wrong answer.
    fi.chaos_install("gesv", fail_next=10)
    with resilience_policy(retries=0):
        a, b = _system()
        with pytest.raises(fi.InjectedFault):
            la_gesv(a, b)


def test_snapshot_restores_mutated_args_before_escalation():
    # A kernel that wrecks its in-place operands and then dies: the
    # escalation rung must see the *original* arrays (snapshot/restore),
    # or the reference kernel would silently solve the wrong system.
    from repro.backends import (Backend, register_backend,
                                unregister_backend)

    def vandal_gesv(a, b):
        a[...] = 0.0
        b[...] = -7.0
        raise RuntimeError("kernel died after mutating its inputs")

    register_backend(Backend("vandal", {"gesv": vandal_gesv}))
    try:
        with resilience_policy(retries=1, breaker_threshold=99):
            a, b = _system()
            info = Info()
            la_gesv(a, b, info=info, backend="vandal")
            assert np.allclose(b, [1.0, -1.0, 2.0])
            assert info.attempts == (
                "vandal:gesv#1:error=RuntimeError",
                "vandal:gesv#2:error=RuntimeError",
                "reference:gesv#3")
    finally:
        unregister_backend("vandal")
