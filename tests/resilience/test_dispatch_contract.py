"""Unit contract of the dispatch seam helpers lalint verifies against.

``snapshot_set`` is the runtime half of LA019: the exact operand set
the retry machinery can roll back.  ``exempt_kernels`` is the runtime
half of the LA019 exemption: spec-declared ``breaker_exempt`` kernels.
"""

import numpy as np

from repro.resilience import dispatch
from repro.specs import SPECS


def test_snapshot_set_is_every_ndarray_in_call_order():
    a = np.zeros((2, 2))
    b = np.ones(2)
    c = np.arange(3)
    got = dispatch.snapshot_set((a, 3, b), {"x": "N", "work": c})
    assert [arr is which for arr, which in zip(got, (a, b, c))] \
        == [True, True, True]
    assert len(got) == 3


def test_snapshot_set_of_arrayless_calls_is_empty():
    assert dispatch.snapshot_set((1, "N", None), {"tol": 0.5}) == []


def test_snapshot_restores_through_the_set():
    a = np.arange(4.0)
    saved = dispatch._snapshot((a,), {})
    a[...] = -1.0
    dispatch._restore(saved)
    assert np.allclose(a, np.arange(4.0))
    # The snapshot is a copy, not a view of the live array.
    (pair,) = saved
    assert pair[1] is not a and pair[1].base is not a


def test_exempt_kernels_mirror_the_spec_flags():
    exempt = dispatch.exempt_kernels()
    want = {spec.kernel for spec in SPECS.values()
            if spec.breaker_exempt and spec.kernel is not None}
    assert exempt == frozenset(want)
    assert "lagge" in exempt and "gesv" not in exempt
    # The legacy private alias still resolves to the same callable.
    assert dispatch._exempt_kernels is dispatch.exempt_kernels
