"""Deadline budgets: entry and stage checkpoints, nesting, overhead."""

import json
import os
import time

import numpy as np
import pytest

import repro
from repro import DeadlineExceeded, Info, deadline, la_gesv, la_gesvx
from repro.errors import DEADLINE
from repro.resilience import deadlines, remaining, reset_breakers
from repro.resilience.calllog import depth
from repro.testing import faultinject as fi


@pytest.fixture(autouse=True)
def _clean_state():
    yield
    fi.chaos_clear()
    reset_breakers()


def _system():
    a = np.array([[4.0, 1.0, 0.0], [1.0, 3.0, 1.0], [0.0, 1.0, 2.0]])
    return a, a @ np.array([1.0, -1.0, 2.0])


def test_entry_checkpoint_rejects_a_spent_budget():
    a, b = _system()
    with pytest.raises(DeadlineExceeded) as exc:
        with deadline(0.005):
            time.sleep(0.01)
            la_gesv(a, b)
    assert exc.value.stage == "entry"
    assert int(exc.value.partial) == DEADLINE
    assert "LA_GESV" in str(exc.value)


def test_stage_checkpoint_interrupts_between_factor_and_condition():
    a, b = _system()
    # The factor-stage kernel is slowed past the budget; the driver must
    # stop at the very next checkpoint rather than finish the pipeline.
    fi.chaos_install("getrf", latency=0.05)
    with pytest.raises(DeadlineExceeded) as exc:
        with deadline(0.02):
            la_gesvx(a.copy(), b.copy())
    assert exc.value.stage == "factor"
    assert int(exc.value.partial) == DEADLINE


def test_partial_info_carries_attempts_made_before_expiry():
    a, b = _system()
    fi.chaos_install("getrf", latency=0.05, fail_next=1)
    info = Info()
    with pytest.raises(DeadlineExceeded) as exc:
        with deadline(0.02):
            la_gesvx(a.copy(), b.copy(), info=info)
    partial = exc.value.partial
    assert partial is info
    assert partial.attempts is not None
    assert any("getrf" in att for att in partial.attempts)


def test_nested_deadlines_tightest_wins_and_unwind():
    a, b = _system()
    with deadline(30.0):
        with pytest.raises(DeadlineExceeded):
            with deadline(0.001):
                time.sleep(0.005)
                la_gesv(a.copy(), b.copy())
        # The inner scope unwound: only the generous budget remains.
        assert remaining() > 1.0
        la_gesv(a.copy(), b.copy())
    assert remaining() is None


def test_deadline_rejects_nonpositive_budget():
    with pytest.raises(ValueError):
        with deadline(0.0):
            pass


def test_no_deadline_means_no_checkpoint_cost_or_interference():
    a, b = _system()
    assert remaining() is None
    x = la_gesv(a, b)
    assert np.allclose(x, [1.0, -1.0, 2.0])


def test_calllog_frames_balance_across_deadline_raise():
    a, b = _system()
    before = depth()
    with pytest.raises(DeadlineExceeded):
        with deadline(0.001):
            time.sleep(0.005)
            la_gesv(a.copy(), b.copy())
    assert depth() == before


def test_deadline_check_is_thread_scoped():
    import threading

    seen = {}

    def worker():
        # The main thread's armed deadline must not leak here.
        seen["remaining"] = remaining()
        a, b = _system()
        la_gesv(a, b)
        seen["ok"] = True

    with deadline(0.0015):
        t = threading.Thread(target=worker)
        t.start()
        t.join()
    assert seen["remaining"] is None
    assert seen["ok"]


def test_resilience_overhead_on_undeadlined_hot_loop():
    """The acceptance bound: with no deadline armed, no chaos and no
    tracked breakers, the resilient seam must cost ~nothing on the
    la_gesv hot loop (target <1%).  Isolated by timing the dispatching
    kernel proxy (which now runs ``resilience.dispatch.call``) against
    the directly-resolved kernel on a size where the kernel dominates.
    The measured numbers land in BENCH_resilience.json; the assertion is
    lenient (<15%) so CI stays immune to scheduler noise."""
    rng = np.random.default_rng(7)
    n = 50
    a0 = rng.standard_normal((n, n)) + n * np.eye(n)
    b0 = rng.standard_normal((n, 1))
    n_iter = 60

    from repro.backends import kernels, resolve

    def pre_resilience_seam(*args, **kwargs):
        # Exactly what KernelProxy.__call__ did before the resilience
        # layer: dtype scan + per-call resolve + kernel invocation.
        dtype = None
        for value in args:
            if isinstance(value, np.ndarray):
                dtype = value.dtype
                break
        return resolve("gesv", dtype)(*args, **kwargs)

    def loop(fn):
        t0 = time.perf_counter()
        for _ in range(n_iter):
            fn(a0.copy(), b0.copy())
        return time.perf_counter() - t0

    loop(kernels.gesv)  # warm both paths
    loop(pre_resilience_seam)
    # Interleave the rounds so background load hits both paths alike,
    # and let min-of-many converge on the unloaded time for each.
    seam = base = float("inf")
    for _ in range(10):
        seam = min(seam, loop(kernels.gesv))
        base = min(base, loop(pre_resilience_seam))
    overhead = (seam - base) / base if base > 0 else 0.0

    def driver_loop():
        t0 = time.perf_counter()
        for _ in range(n_iter):
            la_gesv(a0.copy(), b0.copy())
        return time.perf_counter() - t0

    driver_loop()
    driver = min(driver_loop() for _ in range(3))
    out = {"n": n, "iters": n_iter, "proxy_seam_s": seam,
           "pre_resilience_seam_s": base, "driver_loop_s": driver,
           "relative_seam_overhead": overhead}
    path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "..", "..", "BENCH_resilience.json")
    with open(os.path.abspath(path), "w", encoding="utf-8") as fh:
        json.dump(out, fh, indent=2)
    assert overhead < 0.15, out
