"""Circuit-breaker lifecycle through the real dispatch seam.

The deterministic end-to-end drill the resilience subsystem promises:
trip a (backend, routine) pair open with injected failures, watch
dispatch route transparently to the reference substrate with correct
results, wait out the cooldown, and watch a half-open probe restore the
accelerated path — every transition visible on Info and healthcheck().
"""

import time
import warnings

import numpy as np
import pytest

import repro
from repro import Info, la_gesv
from repro.errors import BackendFallbackWarning
from repro.resilience import (breaker, breaker_state, breaker_states,
                              reset_breakers, reset_open_warnings,
                              resilience_policy)
from repro.testing import faultinject as fi

pytestmark = pytest.mark.skipif(
    "accelerated" not in repro.available_backends(),
    reason="breaker drill needs a second registered backend")


@pytest.fixture(autouse=True)
def _clean_state():
    yield
    fi.chaos_clear()
    reset_breakers()
    reset_open_warnings()


def _system():
    a = np.array([[4.0, 1.0, 0.0], [1.0, 3.0, 1.0], [0.0, 1.0, 2.0]])
    return a, a @ np.array([1.0, -1.0, 2.0])


def _solve(**kw):
    a, b = _system()
    info = Info()
    la_gesv(a, b, info=info, **kw)
    return b, info


def test_breaker_full_lifecycle():
    a0, b0 = _system()
    x_true = np.array([1.0, -1.0, 2.0])
    with resilience_policy(retries=0, breaker_threshold=3,
                           breaker_cooldown=0.05):
        fi.chaos_install("gesv", fail_next=3, backend="accelerated")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            # Failures 1 and 2: escalation covers, breaker still closed.
            for _ in range(2):
                x, info = _solve(backend="accelerated")
                assert np.allclose(x, x_true)
                assert info.attempts == (
                    "accelerated:gesv#1:error=InjectedFault",
                    "reference:gesv#2")
                assert info.breaker is None
            assert breaker_state("accelerated", "gesv") == "closed"
            # Failure 3 trips the pair open.
            x, info = _solve(backend="accelerated")
            assert np.allclose(x, x_true)
            assert info.breaker == "open:accelerated:gesv"
            assert breaker_state("accelerated", "gesv") == "open"
            assert breaker.TRACKING
            # While open: accelerated is not attempted at all, results
            # stay correct, and healthcheck sees the open pair.
            x, info = _solve(backend="accelerated")
            assert np.allclose(x, x_true)
            assert info.attempts == ("reference:gesv#1",)
            assert "accelerated:gesv" in breaker_states()
            report = repro.healthcheck()
            assert report["backends"]["reference"]["ok"]
            # The open-breaker reroute warned exactly once (rate-limited).
            open_warnings = [w for w in caught
                             if issubclass(w.category,
                                           BackendFallbackWarning)
                             and "circuit breaker open" in str(w.message)]
            assert len(open_warnings) == 1
        # Cooldown elapses: half-open, and the next call is the probe.
        time.sleep(0.06)
        assert breaker_state("accelerated", "gesv") == "half-open"
        x, info = _solve(backend="accelerated")
        assert np.allclose(x, x_true)
        assert info.attempts == ("accelerated:gesv#1",)
        assert info.breaker == \
            "probe:accelerated:gesv;closed:accelerated:gesv"
        # Recovered: registry empty again, accelerated serving normally.
        assert breaker_states() == {}
        assert not breaker.TRACKING
        x, info = _solve(backend="accelerated")
        assert np.allclose(x, x_true)
        assert info.attempts is None


def test_failed_probe_reopens_and_restarts_cooldown():
    with resilience_policy(retries=0, breaker_threshold=2,
                           breaker_cooldown=0.05):
        fi.chaos_install("gesv", fail_next=3, backend="accelerated")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            _solve(backend="accelerated")
            _solve(backend="accelerated")
            assert breaker_state("accelerated", "gesv") == "open"
            time.sleep(0.06)
            # Probe consumes the third injected failure: re-open.
            x, info = _solve(backend="accelerated")
        assert np.allclose(x, [1.0, -1.0, 2.0])
        assert "open:accelerated:gesv" in (info.breaker or "")
        assert breaker_state("accelerated", "gesv") == "open"
        # Second cooldown: the next probe is clean and closes it.
        time.sleep(0.06)
        _solve(backend="accelerated")
        assert breaker_states() == {}


def test_contract_verdicts_count_as_breaker_success():
    singular = np.zeros((3, 3))
    b = np.ones(3)
    with resilience_policy(retries=0, breaker_threshold=2):
        for _ in range(3):
            info = Info()
            la_gesv(singular.copy(), b.copy(), info=info,
                    backend="accelerated")
            assert int(info) > 0
        # Singular-matrix verdicts never accumulate toward a trip.
        assert breaker_state("accelerated", "gesv") == "closed"
        assert breaker_states() == {}


def test_retry_budget_absorbs_flaky_kernel_without_tripping():
    with resilience_policy(retries=1, breaker_threshold=2):
        fi.chaos_install("gesv", flaky_every=2, backend="accelerated")
        for _ in range(6):
            x, info = _solve(backend="accelerated")
            assert np.allclose(x, [1.0, -1.0, 2.0])
        # Every failure was followed by an in-rung retry success, so
        # failures never ran consecutively and the breaker stayed quiet.
        assert breaker_states() == {}


def test_breaker_exempt_routine_is_never_retried():
    from repro.core.matrix_util import la_lagge
    from repro.specs import SPECS

    assert SPECS["la_lagge"].breaker_exempt
    fi.chaos_install("lagge", fail_next=1)
    a = np.empty((4, 4))
    with pytest.raises(fi.InjectedFault):
        la_lagge(a, iseed=42)
    # No retry consumed RNG state behind the caller's back: the very
    # next call generates exactly what an undisturbed seed would.
    fi.chaos_clear()
    la_lagge(a, iseed=42)
    expected = np.empty((4, 4))
    la_lagge(expected, iseed=42)
    assert np.array_equal(a, expected)
