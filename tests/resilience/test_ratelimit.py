"""Windowed warning aggregation: the RateLimiter and its two consumers
(backend-fallback announcements and breaker-open reroutes)."""

import warnings

import numpy as np
import pytest

import repro
from repro import la_gesv
from repro.backends import reset_fallback_announcements, use_backend
from repro.errors import BackendFallbackWarning
from repro.resilience import resilience_policy
from repro.resilience.ratelimit import RateLimiter


@pytest.fixture(autouse=True)
def _clean_state():
    yield
    reset_fallback_announcements()


def test_first_tick_emits_then_window_suppresses():
    rl = RateLimiter(window=60.0)
    assert rl.tick("k", now=0.0) == (True, 0)
    assert rl.tick("k", now=1.0) == (False, 0)
    assert rl.tick("k", now=59.9) == (False, 0)
    # Window expired: emit again, reporting the two suppressed ticks.
    assert rl.tick("k", now=60.0) == (True, 2)
    # Fresh window after re-emission.
    assert rl.tick("k", now=61.0) == (False, 0)


def test_keys_are_independent():
    rl = RateLimiter(window=10.0)
    assert rl.tick("a", now=0.0) == (True, 0)
    assert rl.tick("b", now=0.0) == (True, 0)
    assert rl.tick("a", now=5.0) == (False, 0)
    # "a"'s suppression does not bleed into "b"'s count.
    assert rl.tick("b", now=11.0) == (True, 0)


def test_per_call_window_override_and_reset():
    rl = RateLimiter(window=1000.0)
    assert rl.tick("k", now=0.0) == (True, 0)
    assert rl.tick("k", now=5.0, window=2.0) == (True, 0)
    rl.reset()
    assert rl.tick("k", now=5.0) == (True, 0)


def test_zero_window_always_emits():
    rl = RateLimiter(window=0.0)
    assert rl.tick("k", now=0.0) == (True, 0)
    assert rl.tick("k", now=0.0) == (True, 0)


def test_fallback_warning_aggregates_within_window():
    # 'accelerated' does not provide lagge: every dispatch degrades to
    # reference, but only the first announcement in the window emits.
    if "accelerated" not in repro.available_backends():
        pytest.skip("needs the accelerated backend registered")
    from repro.backends.kernels import lagge

    def call():
        return lagge(3, 3, np.array([1.0, 0.5, 0.25]), kl=2, ku=2,
                     dtype=np.float64, rng=np.random.default_rng(0))

    with use_backend("accelerated"):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(4):
                call()
    msgs = [str(w.message) for w in caught
            if issubclass(w.category, BackendFallbackWarning)]
    assert len(msgs) == 1
    assert "lagge" in msgs[0]


def test_fallback_warning_reports_suppressed_count_after_window():
    if "accelerated" not in repro.available_backends():
        pytest.skip("needs the accelerated backend registered")
    a0 = np.array([[4.0, 1.0], [1.0, 3.0]])
    with resilience_policy(warning_window=0.05):
        with use_backend("accelerated"):
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                # gecon is reference-only: each expert solve announces.
                from repro.backends.kernels import gecon
                gecon(a0.copy(), 5.0)
                gecon(a0.copy(), 5.0)
                gecon(a0.copy(), 5.0)
                import time
                time.sleep(0.06)
                gecon(a0.copy(), 5.0)
    msgs = [str(w.message) for w in caught
            if issubclass(w.category, BackendFallbackWarning)
            and "gecon" in str(w.message)]
    assert len(msgs) == 2
    assert "suppressed" not in msgs[0]
    assert "2 identical warnings suppressed" in msgs[1]


def test_reset_allows_immediate_reannouncement():
    if "accelerated" not in repro.available_backends():
        pytest.skip("needs the accelerated backend registered")
    from repro.backends.kernels import gecon
    a0 = np.array([[4.0, 1.0], [1.0, 3.0]])
    with use_backend("accelerated"):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            gecon(a0.copy(), 5.0)
            reset_fallback_announcements()
            gecon(a0.copy(), 5.0)
    msgs = [w for w in caught
            if issubclass(w.category, BackendFallbackWarning)]
    assert len(msgs) == 2
