"""Functional contract of the spec-generated batched drivers:
amortized validation, per-problem BatchInfo telemetry, batch-indexed
(and rate-limited) warnings, fallback replay, deadline prefixes and the
per-backend capability report."""

import warnings

import numpy as np
import pytest

import repro
from repro import faults
from repro import (DeadlineExceeded, DriverFallbackWarning, Info,
                   NonFiniteWarning, SingularMatrix, deadline,
                   exception_policy, la_gesv, la_posv)
from repro.batch import (BatchInfo, batch_gels, batch_gesv, batch_posv,
                         batch_syev, batchable_specs, make_batched,
                         reset_batch_announcements)
from repro.backends.batched import batch_capability
from repro.specs import SPECS, validate_batch

from ..conftest import well_conditioned, spd_matrix


def _stack(rng, batch, n, nrhs=2):
    a = np.stack([well_conditioned(rng, n, np.float64)
                  for _ in range(batch)])
    b = rng.standard_normal((batch, n, nrhs))
    return a, b


# -- derivation -------------------------------------------------------

def test_registry_opt_in_drives_generation():
    names = {s.name for s in batchable_specs()}
    assert names == {"la_gesv", "la_posv", "la_sysv", "la_hesv",
                     "la_gels", "la_syev", "la_heev"}
    for spec in batchable_specs():
        assert hasattr(repro, "batch_" + spec.name[3:])


def test_make_batched_carries_spec():
    spec = SPECS["la_gesv"]
    fn = make_batched(spec)
    assert fn.__name__ == "batch_gesv"
    assert fn.spec is spec


# -- amortized validation ---------------------------------------------

def test_validate_batch_codes(rng):
    a, b = _stack(rng, 4, 5)
    assert validate_batch(SPECS["la_gesv"], {"a": a, "b": b}) == (0, 4)
    # leading-dim mismatch flags the offending argument's position
    assert validate_batch(SPECS["la_gesv"],
                          {"a": a, "b": b[:3]}) == (-2, 0)
    # an unstacked matrix cannot start a batch
    assert validate_batch(SPECS["la_gesv"],
                          {"a": a[0], "b": b}) == (-1, 0)


def test_batch_validation_reports_like_scalar(rng):
    a, b = _stack(rng, 3, 4)
    info = BatchInfo()
    batch_gesv(a, b[:, :2, :], info=info)     # rhs rows != n
    assert int(info) == -2


# -- solve paths ------------------------------------------------------

def test_batch_gesv_solves_stack(rng):
    a, b = _stack(rng, 6, 5)
    a0, b0 = a.copy(), b.copy()
    info = BatchInfo()
    x = batch_gesv(a, b, info=info)
    assert info.first_failure == -1
    assert info.codes() == (0,) * 6
    # x aliases b (in-place contract, like the scalar driver)
    assert x is b
    assert np.abs(np.einsum("kij,kjr->kir", a0, x) - b0).max() < 1e-9


def test_batch_gesv_vector_rhs(rng):
    a, _ = _stack(rng, 4, 6)
    b = rng.standard_normal((4, 6))
    a0, b0 = a.copy(), b.copy()
    x = batch_gesv(a, b)
    assert x.shape == (4, 6)
    assert np.abs(np.einsum("kij,kj->ki", a0, x) - b0).max() < 1e-9


def test_batch_syev_matches_numpy(rng):
    a = np.stack([spd_matrix(rng, 5, np.float64) for _ in range(3)])
    info = BatchInfo()
    w = batch_syev(a.copy(), info=info)
    assert info.first_failure == -1
    for k in range(3):
        np.testing.assert_allclose(w[k], np.linalg.eigvalsh(a[k]),
                                   atol=1e-9)


def test_batch_gels_least_squares(rng):
    a = rng.standard_normal((3, 7, 4))
    b = rng.standard_normal((3, 7, 2))
    info = BatchInfo()
    x = batch_gels(a.copy(), b.copy(), info=info)
    assert x.shape == (3, 4, 2)
    assert info.codes() == (0, 0, 0)
    for k in range(3):
        ref, *_ = np.linalg.lstsq(a[k], b[k], rcond=None)
        np.testing.assert_allclose(x[k], ref, atol=1e-8)


# -- error contract ---------------------------------------------------

def test_singular_problem_indexed_in_info(rng):
    a, b = _stack(rng, 5, 4)
    a[2] = 0.0
    info = BatchInfo()
    batch_gesv(a, b, info=info)
    assert info.first_failure == 2
    assert info.problems[2].value > 0
    assert all(info.problems[k].value == 0 for k in (0, 1, 3, 4))
    assert int(info) == info.problems[2].value


def test_raise_path_names_the_problem(rng):
    a, b = _stack(rng, 4, 3)
    a[1] = 0.0
    with pytest.raises(SingularMatrix) as excinfo:
        batch_gesv(a, b)
    assert excinfo.value.batch_index == 1
    assert "[batch problem 1]" in str(excinfo.value)


def test_nonfinite_screen_is_batch_indexed(rng):
    a, b = _stack(rng, 5, 3)
    a[3, 0, 0] = np.nan
    info = BatchInfo()
    with exception_policy(nonfinite="check"):
        batch_gesv(a, b, info=info)
    codes = info.codes()
    assert codes[3] <= -1000          # NONFINITE - position
    assert all(codes[k] == 0 for k in (0, 1, 2, 4))


def test_nonfinite_warning_rate_limited(rng):
    reset_batch_announcements()
    a, b = _stack(rng, 4, 3)
    a[2, 0, 0] = np.inf
    with exception_policy(nonfinite="warn"):
        with warnings.catch_warnings(record=True) as first:
            warnings.simplefilter("always")
            batch_gesv(a.copy(), b.copy())
        with warnings.catch_warnings(record=True) as second:
            warnings.simplefilter("always")
            batch_gesv(a.copy(), b.copy())
    hits = [w for w in first if issubclass(w.category, NonFiniteWarning)]
    assert len(hits) == 1
    assert "BATCH_GESV[batch problem 2]" in str(hits[0].message)
    assert not [w for w in second
                if issubclass(w.category, NonFiniteWarning)]
    reset_batch_announcements()


def test_posv_fallback_replays_batch_indexed(rng):
    reset_batch_announcements()
    a = np.stack([spd_matrix(rng, 4, np.float64) for _ in range(4)])
    a[2] = np.diag([1.0, -1.0, 2.0, 3.0])   # indefinite, nonsingular
    b = rng.standard_normal((4, 4, 2))
    a0, b0 = a.copy(), b.copy()
    info = BatchInfo()
    with exception_policy(fallbacks=True):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            x = batch_posv(a, b, info=info)
    assert info.first_failure == -1
    assert info.problems[2].fallback is not None
    hits = [w for w in caught
            if issubclass(w.category, DriverFallbackWarning)]
    assert len(hits) == 1
    assert "[batch problem 2]" in str(hits[0].message)
    # the fallback problem still solves its system
    assert np.abs(np.einsum("kij,kjr->kir", a0, x) - b0).max() < 1e-8
    reset_batch_announcements()


def test_mid_batch_deadline_keeps_prefix(rng):
    a, b = _stack(rng, 32, 8)
    # latency injection makes each kernel call cost ~20ms, so the
    # 0.1s deadline reliably trips between problems, not at entry
    with pytest.raises(DeadlineExceeded) as excinfo:
        with faults.chaos("gesv", latency=0.02):
            with deadline(0.1):
                batch_gesv(a, b)
    partial = excinfo.value.partial
    assert isinstance(partial, BatchInfo)
    assert int(partial) == partial.problems[-1].value  # DEADLINE class
    codes = np.asarray(partial.codes())
    # a (possibly empty) completed prefix, then DEADLINE markers
    cut = int(np.argmax(codes != 0))
    assert np.all(codes[:cut] == 0)
    assert np.all(codes[cut:] <= -3000)


# -- parity with the scalar drivers (spot check; the property suite
#    in test_parity.py covers this exhaustively) -----------------------

def test_batch_matches_looped_scalar(rng):
    a, b = _stack(rng, 5, 6, nrhs=3)
    ab, bb = a.copy(), b.copy()
    ipiv = np.zeros((5, 6), dtype=np.int64)
    info = BatchInfo()
    x = batch_gesv(ab, bb, ipiv, info=info)
    for k in range(5):
        ak, bk = a[k].copy(), b[k].copy()
        pk = np.zeros(6, dtype=np.int64)
        pinfo = Info()
        la_gesv(ak, bk, pk, info=pinfo)
        assert info.problems[k].value == int(pinfo)
        np.testing.assert_array_equal(x[k], bk)
        np.testing.assert_array_equal(ipiv[k], pk)


# -- capability report ------------------------------------------------

def test_batch_capability_shape():
    caps = batch_capability()
    assert "reference" in caps
    for modes in caps.values():
        assert modes["gesv"] in ("native", "stack", "loop")
        # eigensolvers deliberately stay loop-mode inside the seam
        assert modes["syev"] == "loop"
        assert modes["heev"] == "loop"


def test_accelerated_ships_native_stack_entries():
    """The accelerated substrate registers true stack-forwarding
    kernels for the solve/lstsq families; the grafted loop-mode entry
    must not shadow them."""
    if "accelerated" not in batch_capability():
        pytest.skip("accelerated backend not registered")
    modes = batch_capability()["accelerated"]
    for kernel in ("gesv", "posv", "gels"):
        assert modes[kernel] == "native", (kernel, modes[kernel])
    for kernel in ("sysv", "hesv"):
        assert modes[kernel] == "stack", (kernel, modes[kernel])
    # reference has no native batched primitive: always the graft
    assert all(m == "stack" for k, m in
               batch_capability()["reference"].items()
               if k not in ("syev", "heev"))


def test_healthcheck_reports_batch():
    report = repro.healthcheck()
    for entry in report["backends"].values():
        assert "batch" in entry
        assert set(entry["batch"]) == {"ok", "error", "modes"}
    ref = report["backends"]["reference"]
    assert ref["batch"]["ok"] is True
    assert ref["batch"]["modes"]["gesv"] in ("native", "stack", "loop")
