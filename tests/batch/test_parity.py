"""Property-based parity: ``batch_gesv`` over a stack is elementwise
identical to looping ``la_gesv`` — same solutions bit-for-bit, same
pivots, same per-problem ``Info`` codes, same componentwise backward
error — on every registered backend and under chaos injection.

Both runs share one dispatch seam, so parity is the strongest possible
statement that the generated wrapper adds *nothing* numerically: it
only amortizes validation and aggregates the error contract.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Info, available_backends, faults, la_gesv, use_backend
from repro.batch import BatchInfo, batch_gesv
from repro.resilience import reset_breakers

SETTINGS = dict(max_examples=15, deadline=None)

BACKENDS = [n for n in ("reference", "accelerated")
            if n in available_backends()]


def _problems(seed, batch, n, nrhs, n_singular=0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((batch, n, n)) + n * np.eye(n)
    if n_singular:
        # zero out a deterministic subset so failure codes get exercised
        for k in rng.choice(batch, size=min(n_singular, batch),
                            replace=False):
            a[k] = 0.0
    b = rng.standard_normal((batch, n, nrhs))
    return a, b


def _componentwise_backward_error(a, x, b):
    """max_i |b - Ax|_i / (|A||x| + |b|)_i — the Appendix F metric."""
    r = np.abs(b - a @ x)
    scale = np.abs(a) @ np.abs(x) + np.abs(b)
    with np.errstate(divide="ignore", invalid="ignore"):
        eta = np.where(scale > 0, r / scale, 0.0)
    return float(np.nanmax(eta)) if eta.size else 0.0


def _assert_parity(a, b, backend):
    batch, n, _ = a.shape
    ab, bb = a.copy(), b.copy()
    bipiv = np.zeros((batch, n), dtype=np.int64)
    binfo = BatchInfo()
    with use_backend(backend):
        x = batch_gesv(ab, bb, bipiv, info=binfo)
    for k in range(batch):
        ak, bk = a[k].copy(), b[k].copy()
        pk = np.zeros(n, dtype=np.int64)
        pinfo = Info()
        with use_backend(backend):
            la_gesv(ak, bk, pk, info=pinfo)
        assert binfo.problems[k].value == int(pinfo), k
        if int(pinfo) == 0:
            np.testing.assert_array_equal(x[k], bk, err_msg=f"problem {k}")
            np.testing.assert_array_equal(bipiv[k], pk,
                                          err_msg=f"problem {k}")
            assert _componentwise_backward_error(a[k], x[k], b[k]) \
                == _componentwise_backward_error(a[k], bk, b[k])


@pytest.mark.parametrize("backend", BACKENDS)
@given(batch=st.integers(1, 6), n=st.integers(1, 10),
       nrhs=st.integers(1, 3), seed=st.integers(0, 2**31))
@settings(**SETTINGS)
def test_batch_gesv_elementwise_identical_to_loop(backend, batch, n,
                                                  nrhs, seed):
    a, b = _problems(seed, batch, n, nrhs)
    _assert_parity(a, b, backend)


@pytest.mark.parametrize("backend", BACKENDS)
@given(batch=st.integers(2, 6), n=st.integers(2, 8),
       seed=st.integers(0, 2**31))
@settings(**SETTINGS)
def test_parity_holds_through_failures(backend, batch, n, seed):
    """Singular problems must carry the same per-problem Info codes as
    the scalar driver, and the healthy problems stay bit-identical."""
    a, b = _problems(seed, batch, n, nrhs=2, n_singular=1)
    _assert_parity(a, b, backend)


@pytest.mark.parametrize("backend", BACKENDS)
@given(batch=st.integers(1, 5), n=st.integers(1, 8),
       seed=st.integers(0, 2**31))
@settings(**SETTINGS)
def test_parity_under_chaos(backend, batch, n, seed):
    """Chaos injection (flaky kernels, retry ladder) must not open a gap
    between the batched and looped paths: each run gets a fresh fault
    schedule, so both see identical per-call faults and recover to
    identical results."""
    a, b = _problems(seed, batch, n, nrhs=2)
    batch_, n_ = a.shape[0], a.shape[1]
    ab, bb = a.copy(), b.copy()
    bipiv = np.zeros((batch_, n_), dtype=np.int64)
    binfo = BatchInfo()
    reset_breakers()
    with faults.chaos("gesv", flaky_every=3):
        with use_backend(backend):
            x = batch_gesv(ab, bb, bipiv, info=binfo)
    reset_breakers()
    with faults.chaos("gesv", flaky_every=3):
        for k in range(batch_):
            ak, bk = a[k].copy(), b[k].copy()
            pk = np.zeros(n_, dtype=np.int64)
            pinfo = Info()
            with use_backend(backend):
                la_gesv(ak, bk, pk, info=pinfo)
            assert binfo.problems[k].value == int(pinfo), k
            np.testing.assert_array_equal(x[k], bk, err_msg=f"problem {k}")
            np.testing.assert_array_equal(bipiv[k], pk,
                                          err_msg=f"problem {k}")
