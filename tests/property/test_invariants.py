"""Property-based tests (hypothesis) on the core invariants:
factorizations reconstruct, solves satisfy residual bounds, transforms
stay orthogonal, the ERINFO contract holds for arbitrary bad shapes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Info, IllegalArgument, la_gesv, la_posv, la_syev
from repro.errors import LinAlgError
from repro.lapack77 import (geqrf, gesvd, getrf, laror, orgqr, potrf, sysv)
from repro.storage import pack, unpack, full_to_band, band_to_full
from repro.testing import residual_ratio

SETTINGS = dict(max_examples=25, deadline=None)


def _well_conditioned(seed, n):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    a[np.diag_indices(n)] += n
    return a


@given(n=st.integers(1, 24), seed=st.integers(0, 2**31))
@settings(**SETTINGS)
def test_gesv_residual_bounded(n, seed):
    """Any diagonally dominant system solves with a small scaled
    residual — the Appendix F quality metric as a universal property."""
    rng = np.random.default_rng(seed)
    a0 = _well_conditioned(seed, n)
    nrhs = int(rng.integers(1, 4))
    b0 = rng.standard_normal((n, nrhs))
    b = b0.copy()
    la_gesv(a0.copy(), b)
    assert residual_ratio(a0, b, b0) < 30.0


@given(n=st.integers(1, 20), seed=st.integers(0, 2**31))
@settings(**SETTINGS)
def test_getrf_reconstructs(n, seed):
    """PA = LU holds for arbitrary random matrices."""
    rng = np.random.default_rng(seed)
    a0 = rng.standard_normal((n, n))
    a = a0.copy()
    ipiv, _ = getrf(a)
    l = np.tril(a, -1) + np.eye(n)
    u = np.triu(a)
    rec = l @ u
    for j in range(n - 1, -1, -1):
        if ipiv[j] != j:
            rec[[j, ipiv[j]]] = rec[[ipiv[j], j]]
    assert np.abs(rec - a0).max() <= 1e-10 * max(1, np.abs(a0).max()) * n


@given(n=st.integers(1, 20), seed=st.integers(0, 2**31))
@settings(**SETTINGS)
def test_pivots_bounded(n, seed):
    """Partial pivoting: every pivot index points at or below its row."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    ipiv, _ = getrf(a)
    assert np.all(ipiv >= np.arange(n))
    assert np.all(ipiv < n)


@given(n=st.integers(1, 16), seed=st.integers(0, 2**31))
@settings(**SETTINGS)
def test_cholesky_positive_definite_roundtrip(n, seed):
    rng = np.random.default_rng(seed)
    g = rng.standard_normal((n, n))
    a0 = g @ g.T + np.eye(n) * n
    a = a0.copy()
    info = potrf(a, "U")
    assert info == 0
    u = np.triu(a)
    assert np.abs(u.T @ u - a0).max() <= 1e-9 * np.abs(a0).max() * n
    assert np.all(np.diag(u) > 0)


@given(n=st.integers(1, 16), seed=st.integers(0, 2**31))
@settings(**SETTINGS)
def test_posv_rejects_indefinite(n, seed):
    """A matrix with a negative eigenvalue must produce info > 0, never a
    wrong answer."""
    rng = np.random.default_rng(seed)
    g = rng.standard_normal((n, n))
    a = g @ g.T + np.eye(n)
    a[n - 1, n - 1] = -np.abs(a[n - 1, n - 1]) - 1
    info = Info()
    la_posv(a, np.ones(n), info=info)
    assert info.value > 0


@given(m=st.integers(1, 15), n=st.integers(1, 15),
       seed=st.integers(0, 2**31))
@settings(**SETTINGS)
def test_qr_orthogonality(m, n, seed):
    rng = np.random.default_rng(seed)
    if m < n:
        m, n = n, m
    a = rng.standard_normal((m, n))
    tau = geqrf(a)
    q = orgqr(a.copy(), tau)
    assert np.abs(q.T @ q - np.eye(n)).max() < 1e-10 * max(m, 1)


@given(m=st.integers(1, 12), n=st.integers(1, 12),
       seed=st.integers(0, 2**31))
@settings(**SETTINGS)
def test_svd_invariants(m, n, seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, n))
    s, u, vt, info = gesvd(a.copy(), jobu="S", jobvt="S")
    assert info == 0
    assert np.all(s >= 0)
    assert np.all(np.diff(s) <= 1e-12)          # descending
    assert np.abs((u * s) @ vt - a).max() < 1e-9 * max(1, np.abs(a).max())
    # Norm identities.
    assert np.isclose(np.linalg.norm(a, 2), s[0] if s.size else 0,
                      atol=1e-10)
    assert np.isclose(np.linalg.norm(a, "fro"), np.linalg.norm(s),
                      atol=1e-10)


@given(n=st.integers(1, 16), seed=st.integers(0, 2**31))
@settings(**SETTINGS)
def test_syev_trace_and_orthogonality(n, seed):
    """Eigenvalues sum to the trace; eigenvectors stay orthonormal."""
    rng = np.random.default_rng(seed)
    a0 = rng.standard_normal((n, n))
    a0 = a0 + a0.T
    a = a0.copy()
    w = la_syev(a, jobz="V")
    assert np.isclose(np.sum(w), np.trace(a0), atol=1e-8 * max(
        1, np.abs(a0).max()) * n)
    assert np.abs(a.T @ a - np.eye(n)).max() < 1e-8
    assert np.all(np.diff(w) >= -1e-12)


@given(n=st.integers(2, 14), seed=st.integers(0, 2**31))
@settings(**SETTINGS)
def test_sysv_symmetric_consistency(n, seed):
    """Bunch–Kaufman solves agree with the dense LU answer."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    a = a + a.T + np.diag(np.linspace(-n, n, n))
    x_true = rng.standard_normal(n)
    b = a @ x_true
    bb = b.copy()[:, None]
    ipiv, info = sysv(a.copy(), bb, "U")
    if info == 0:
        ref = np.linalg.solve(a, b)
        assert np.abs(bb[:, 0] - ref).max() < 1e-6 * max(
            1, np.abs(ref).max())


@given(n=st.integers(1, 12), seed=st.integers(0, 2**31),
       uplo=st.sampled_from(["U", "L"]))
@settings(**SETTINGS)
def test_pack_unpack_roundtrip(n, seed, uplo):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    a = a + a.T
    ap = pack(a, uplo)
    full = unpack(ap, n, uplo=uplo, symmetric=True)
    assert np.array_equal(full, np.where(
        np.eye(n, dtype=bool), a, a))  # symmetric content
    assert np.abs(full - a).max() == 0


@given(n=st.integers(1, 12), kl=st.integers(0, 4), ku=st.integers(0, 4),
       seed=st.integers(0, 2**31))
@settings(**SETTINGS)
def test_band_roundtrip(n, kl, ku, seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    for i in range(n):
        for j in range(n):
            if j - i > ku or i - j > kl:
                a[i, j] = 0
    ab = full_to_band(a, kl, ku)
    back = band_to_full(ab, n, n, kl, ku)
    assert np.array_equal(back, a)


@given(n=st.integers(1, 10), seed=st.integers(0, 2**31))
@settings(**SETTINGS)
def test_laror_is_orthogonal(n, seed):
    q = laror(n, rng=np.random.default_rng(seed))
    assert np.abs(q.T @ q - np.eye(n)).max() < 1e-12 * max(n, 1) * 10


@given(rows=st.integers(1, 6), cols=st.integers(1, 6),
       brows=st.integers(1, 6))
@settings(**SETTINGS)
def test_gesv_shape_errors_always_reported(rows, cols, brows):
    """For every inconsistent shape combination, la_gesv reports a
    negative info (never crashes, never silently proceeds)."""
    a = np.ones((rows, cols))
    b = np.ones(brows)
    consistent = rows == cols and brows == rows
    info = Info()
    if consistent:
        la_gesv(a + np.eye(rows) * rows, b, info=info)
        assert info.value == 0
    else:
        la_gesv(a, b, info=info)
        assert info.value < 0
        with pytest.raises(IllegalArgument):
            la_gesv(np.ones((rows, cols)), np.ones(brows))


@given(n=st.integers(2, 10), seed=st.integers(0, 2**31))
@settings(**SETTINGS)
def test_schur_preserves_spectrum_and_norm(n, seed):
    """gees: unitary similarity preserves eigenvalues and Frobenius norm."""
    from repro.lapack77 import gees
    rng = np.random.default_rng(seed)
    a0 = rng.standard_normal((n, n))
    t = a0.copy()
    w, vs, sdim, info = gees(t, jobvs="V")
    assert info == 0
    assert np.isclose(np.linalg.norm(t, "fro"), np.linalg.norm(a0, "fro"),
                      rtol=1e-10)
    ref = np.linalg.eigvals(a0)
    # Greedy matching (conjugate-pair ordering defeats plain sorts).
    got = list(w)
    for r in ref:
        j = int(np.argmin([abs(r - g) for g in got]))
        assert abs(r - got[j]) < 1e-6 * max(1, abs(r))
        got.pop(j)


@given(n=st.integers(1, 8), seed=st.integers(0, 2**31))
@settings(**SETTINGS)
def test_qz_pencil_invariants(n, seed):
    """gegs: both reconstructions hold and |alpha/beta| matches scipy."""
    sla = pytest.importorskip("scipy.linalg")
    from repro.lapack77 import gegs
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    b = rng.standard_normal((n, n)) + np.eye(n)
    alpha, beta, s, t, q, z, info = gegs(a.copy(), b.copy())
    assert info == 0
    assert np.abs(q @ s @ np.conj(z.T) - a).max() < 1e-9 * max(
        1, np.abs(a).max())
    assert np.abs(q @ t @ np.conj(z.T) - b).max() < 1e-9 * max(
        1, np.abs(b).max())
    got = np.sort(np.abs(alpha / beta))
    ref = np.sort(np.abs(sla.eigvals(a, b)))
    np.testing.assert_allclose(got, ref, rtol=1e-6, atol=1e-9)


@given(n=st.integers(1, 12), nrhs=st.integers(1, 3),
       seed=st.integers(0, 2**31))
@settings(**SETTINGS)
def test_expert_driver_bounds_hold(n, nrhs, seed):
    """la_gesvx: the forward error bound really bounds the error for
    well-conditioned systems."""
    from repro import la_gesvx
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n)) + np.eye(n) * (n + 1)
    x_true = rng.standard_normal((n, nrhs))
    b = a @ x_true
    res = la_gesvx(a.copy(), b)
    err = np.max(np.abs(res.x - x_true), axis=0) / np.maximum(
        np.max(np.abs(x_true), axis=0), 1e-300)
    assert np.all(err <= np.maximum(res.ferr, 1e-16) * 50 + 1e-14)
    assert 0 < res.rcond <= 1
