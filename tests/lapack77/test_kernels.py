"""Elementary transformation kernels: Householder reflectors, Givens
rotations, 2×2 standardization (lanv2)."""

import numpy as np
import pytest

from repro.lapack77.givens import lanv2, lartg, lartg_c, lasr
from repro.lapack77.householder import (larf_left, larf_right, larfb,
                                        larfg, larft)

from ..conftest import rand_matrix, rand_vector, tol_for


class TestLarfg:
    @pytest.mark.parametrize("n", [1, 2, 5, 20])
    def test_annihilates_real(self, rng, n):
        x = rng.standard_normal(n)
        alpha, tail = x[0], x[1:].copy()
        beta, tau = larfg(alpha, tail)
        v = np.concatenate([[1.0], tail])
        h = np.eye(n) - tau * np.outer(v, v)
        out = h @ x
        assert np.isclose(out[0], beta)
        np.testing.assert_allclose(out[1:], 0, atol=1e-13)
        # H is orthogonal.
        np.testing.assert_allclose(h @ h.T, np.eye(n), atol=1e-13)
        # Norm preserved.
        assert np.isclose(abs(beta), np.linalg.norm(x))

    def test_annihilates_complex_with_real_beta(self, rng):
        n = 6
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        alpha, tail = x[0], x[1:].copy()
        beta, tau = larfg(alpha, tail)
        assert np.imag(beta) == 0
        v = np.concatenate([[1.0 + 0j], tail])
        # larfg's convention: Hᴴ annihilates (zlarfg).
        hh = np.eye(n) - np.conj(tau) * np.outer(v, np.conj(v))
        out = hh @ x
        assert np.isclose(out[0], beta)
        np.testing.assert_allclose(out[1:], 0, atol=1e-13)

    def test_zero_vector_gives_zero_tau(self):
        tail = np.zeros(3)
        beta, tau = larfg(5.0, tail)
        assert tau == 0 and beta == 5.0


def test_larf_left_right_consistent(rng, dtype):
    n, m = 6, 4
    v = rand_vector(rng, n, dtype)
    v[0] = 1
    tau = 0.3 + (0.1j if np.dtype(dtype).kind == "c" else 0)
    h = np.eye(n, dtype=dtype) - tau * np.outer(v, np.conj(v))
    c = rand_matrix(rng, n, m, dtype)
    got = c.copy()
    larf_left(v, tau, got)
    np.testing.assert_allclose(got, h @ c, atol=tol_for(dtype, 10))
    c2 = rand_matrix(rng, m, n, dtype)
    got2 = c2.copy()
    larf_right(v, tau, got2)
    np.testing.assert_allclose(got2, c2 @ h, atol=tol_for(dtype, 10))


def test_larft_larfb_block_equals_product(rng, dtype):
    """The compact WY form V T Vᴴ equals the product of reflectors."""
    from repro.lapack77.qr import geqr2
    m, k = 10, 4
    a = rand_matrix(rng, m, k, dtype)
    tau = geqr2(a)
    v = np.tril(a, -1)
    np.fill_diagonal(v, 1)
    t = larft("F", "C", v, tau)
    h_block = np.eye(m, dtype=dtype) - v @ t @ np.conj(v.T)
    h_prod = np.eye(m, dtype=dtype)
    for i in range(k):
        vi = v[:, i]
        hi = np.eye(m, dtype=dtype) - tau[i] * np.outer(vi, np.conj(vi))
        h_prod = h_prod @ hi
    np.testing.assert_allclose(h_block, h_prod, atol=tol_for(dtype, 100))
    # larfb applies the same operator.
    c = rand_matrix(rng, m, 3, dtype)
    got = c.copy()
    larfb("L", "N", v, t, got)
    np.testing.assert_allclose(got, h_block @ c, atol=tol_for(dtype, 100))
    got2 = c.copy()
    larfb("L", "C", v, t, got2)
    np.testing.assert_allclose(got2, np.conj(h_block.T) @ c,
                               atol=tol_for(dtype, 100))


class TestGivens:
    @pytest.mark.parametrize("f,g", [(3.0, 4.0), (-1.0, 2.0), (0.0, 5.0),
                                     (5.0, 0.0), (-3.0, -4.0)])
    def test_lartg_real(self, f, g):
        c, s, r = lartg(f, g)
        assert np.isclose(c * f + s * g, r)
        assert np.isclose(-s * f + c * g, 0, atol=1e-14)
        assert np.isclose(c * c + s * s, 1)

    def test_lartg_c_complex(self, rng):
        for _ in range(5):
            f = complex(rng.standard_normal(), rng.standard_normal())
            g = complex(rng.standard_normal(), rng.standard_normal())
            c, s, r = lartg_c(f, g)
            assert np.isclose(c * f + s * g, r)
            assert np.isclose(-np.conj(s) * f + c * g, 0, atol=1e-14)
            assert np.isreal(c)

    def test_lasr_left_right(self, rng):
        n = 5
        a = rng.standard_normal((n, n))
        theta = rng.uniform(0, 2 * np.pi, n - 1)
        c, s = np.cos(theta), np.sin(theta)
        # Build the explicit product of the rotations.
        p = np.eye(n)
        for k in range(n - 1):
            g = np.eye(n)
            g[k, k] = c[k]
            g[k, k + 1] = s[k]
            g[k + 1, k] = -s[k]
            g[k + 1, k + 1] = c[k]
            p = g @ p
        got = a.copy()
        lasr("L", "V", "F", c, s, got)
        np.testing.assert_allclose(got, p @ a, atol=1e-12)


class TestLanv2:
    def test_complex_pair_standardized(self):
        a, b, c, d = 1.0, -5.0, 2.0, 1.0   # complex eigenvalues
        aa, bb, cc, dd, rt1r, rt1i, rt2r, rt2i, cs, sn = lanv2(a, b, c, d)
        ref = np.linalg.eigvals(np.array([[a, b], [c, d]]))
        got = np.array([complex(rt1r, rt1i), complex(rt2r, rt2i)])
        np.testing.assert_allclose(np.sort_complex(got),
                                   np.sort_complex(ref), atol=1e-12)
        # Standard form: equal diagonal, opposite-sign off-diagonals.
        assert np.isclose(aa, dd)
        assert bb * cc < 0
        # The rotation really is a similarity.
        g = np.array([[cs, sn], [-sn, cs]])
        m = np.array([[a, b], [c, d]])
        np.testing.assert_allclose(g @ m @ g.T,
                                   np.array([[aa, bb], [cc, dd]]),
                                   atol=1e-12)

    def test_real_pair_triangularized(self):
        a, b, c, d = 4.0, 2.0, 1.0, 1.0    # real eigenvalues
        aa, bb, cc, dd, rt1r, rt1i, rt2r, rt2i, cs, sn = lanv2(a, b, c, d)
        assert cc == 0.0
        assert rt1i == 0.0 and rt2i == 0.0
        ref = np.sort(np.linalg.eigvals(np.array([[a, b], [c, d]])).real)
        np.testing.assert_allclose(np.sort([rt1r, rt2r]), ref, atol=1e-12)

    def test_already_triangular_untouched(self):
        aa, bb, cc, dd, *_ , cs, sn = lanv2(3.0, 1.0, 0.0, 2.0)
        assert (cs, sn) == (1.0, 0.0)
        assert (aa, bb, cc, dd) == (3.0, 1.0, 0.0, 2.0)
