"""Tridiagonal families vs dense oracles."""

import numpy as np
import pytest

from repro.lapack77 import (gt_matvec, gtcon, gtrfs, gtsv, gttrf, gttrs,
                            langt, pt_matvec, ptcon, ptrfs, ptsv, pttrf,
                            pttrs)

from ..conftest import rand_vector, tol_for


def make_gt(rng, n, dtype, dominant=True):
    dl = rand_vector(rng, n - 1, dtype)
    d = rand_vector(rng, n, dtype)
    du = rand_vector(rng, n - 1, dtype)
    if dominant:
        d += (3.0 + 0j if np.dtype(dtype).kind == "c" else 3.0)
    return dl, d, du


def dense_gt(dl, d, du):
    n = d.shape[0]
    a = np.diag(d)
    if n > 1:
        a += np.diag(dl, -1) + np.diag(du, 1)
    return a


def make_pt(rng, n, dtype):
    e = rand_vector(rng, n - 1, dtype)
    d = np.abs(rand_vector(rng, n, np.float64)) + 3.0
    return d, e


def dense_pt(d, e):
    n = d.shape[0]
    a = np.diag(d.astype(np.result_type(d.dtype, e.dtype)))
    if n > 1:
        a += np.diag(e, -1) + np.diag(np.conj(e), 1)
    return a


@pytest.mark.parametrize("trans", ["N", "T", "C"])
def test_gt_matvec(rng, dtype, trans):
    n = 9
    dl, d, du = make_gt(rng, n, dtype)
    a = dense_gt(dl, d, du)
    x = rand_vector(rng, n, dtype)
    op = {"N": a, "T": a.T, "C": np.conj(a.T)}[trans]
    np.testing.assert_allclose(gt_matvec(dl, d, du, x, trans=trans), op @ x,
                               rtol=tol_for(dtype, 10), atol=tol_for(dtype, 10))


def test_gttrf_factors_solve(rng, dtype):
    n = 20
    dl, d, du = make_gt(rng, n, dtype)
    a = dense_gt(dl, d, du)
    x_true = rand_vector(rng, n, dtype)
    b = (a @ x_true).astype(dtype)
    du2, ipiv, info = gttrf(dl, d, du)
    assert info == 0
    gttrs(dl, d, du, du2, ipiv, b)
    np.testing.assert_allclose(b, x_true, rtol=tol_for(dtype, 1e3),
                               atol=tol_for(dtype, 1e3))


def test_gttrf_pivoting_needed(rng):
    # Zero diagonal forces row interchanges.
    n = 6
    dl = np.ones(n - 1)
    d = np.zeros(n)
    du = np.ones(n - 1) * 2
    a = dense_gt(dl.copy(), d.copy(), du.copy())
    x_true = np.arange(1.0, n + 1)
    b = a @ x_true
    du2, ipiv, info = gttrf(dl, d, du)
    assert info == 0
    assert np.any(ipiv != np.arange(n))
    gttrs(dl, d, du, du2, ipiv, b)
    np.testing.assert_allclose(b, x_true, rtol=1e-12)


@pytest.mark.parametrize("trans", ["N", "T", "C"])
def test_gttrs_trans(rng, dtype, trans):
    n = 15
    dl, d, du = make_gt(rng, n, dtype)
    a = dense_gt(dl, d, du)
    op = {"N": a, "T": a.T, "C": np.conj(a.T)}[trans]
    x_true = rand_vector(rng, n, dtype)
    b = (op @ x_true).astype(dtype)
    du2, ipiv, info = gttrf(dl, d, du)
    gttrs(dl, d, du, du2, ipiv, b, trans=trans)
    np.testing.assert_allclose(b, x_true, rtol=tol_for(dtype, 1e3),
                               atol=tol_for(dtype, 1e3))


def test_gtsv_multiple_rhs(rng, dtype):
    n, nrhs = 25, 3
    dl, d, du = make_gt(rng, n, dtype)
    a = dense_gt(dl, d, du)
    x_true = np.column_stack([rand_vector(rng, n, dtype)
                              for _ in range(nrhs)])
    b = (a @ x_true).astype(dtype)
    info = gtsv(dl, d, du, b)
    assert info == 0
    np.testing.assert_allclose(b, x_true, rtol=tol_for(dtype, 1e3),
                               atol=tol_for(dtype, 1e3))


def test_gtsv_singular_info():
    dl = np.zeros(1)
    d = np.array([0.0, 1.0])
    du = np.zeros(1)
    b = np.ones((2, 1))
    info = gtsv(dl, d, du, b)
    assert info > 0


def test_gtcon_estimate(rng):
    n = 40
    dl, d, du = make_gt(rng, n, np.float64)
    a = dense_gt(dl, d, du)
    anorm = langt("1", dl, d, du)
    du2, ipiv, _ = gttrf(dl, d, du)
    rcond, info = gtcon(dl, d, du, du2, ipiv, anorm)
    true_rcond = 1.0 / np.linalg.cond(a, 1)
    assert true_rcond / 10 <= rcond <= true_rcond * 10


def test_gtrfs_refines(rng):
    n = 30
    dl0, d0, du0 = make_gt(rng, n, np.float64)
    a = dense_gt(dl0, d0, du0)
    x_true = rand_vector(rng, n, np.float64)
    b = a @ x_true
    dlf, df, duf = dl0.copy(), d0.copy(), du0.copy()
    du2, ipiv, _ = gttrf(dlf, df, duf)
    x = b.copy()
    gttrs(dlf, df, duf, du2, ipiv, x)
    x += 1e-7
    ferr, berr, info = gtrfs(dl0, d0, du0, dlf, df, duf, du2, ipiv, b, x)
    assert info == 0
    assert np.all(berr < 1e-13)


def test_pttrf_reconstructs(rng, dtype):
    n = 18
    d, e = make_pt(rng, n, dtype)
    a = dense_pt(d, e)
    d_f, e_f = d.copy(), e.astype(dtype).copy()
    info = pttrf(d_f, e_f)
    assert info == 0
    # L D L^H with L unit lower bidiagonal, subdiagonal e_f.
    l = np.eye(n, dtype=a.dtype)
    l[np.arange(1, n), np.arange(n - 1)] = e_f
    rec = l @ np.diag(d_f) @ np.conj(l.T)
    np.testing.assert_allclose(rec, a, rtol=tol_for(dtype, 100),
                               atol=tol_for(dtype, 100))


def test_pttrf_not_pd():
    d = np.array([1.0, -1.0, 1.0])
    e = np.zeros(2)
    info = pttrf(d, e)
    assert info == 2


def test_ptsv_solves(rng, dtype):
    n, nrhs = 22, 2
    d, e = make_pt(rng, n, dtype)
    a = dense_pt(d, e)
    x_true = np.column_stack([rand_vector(rng, n, dtype)
                              for _ in range(nrhs)])
    b = (a @ x_true).astype(np.result_type(dtype, np.float64)
                            if np.dtype(dtype).kind != "c" else dtype)
    info = ptsv(d, e.astype(dtype), b)
    assert info == 0
    np.testing.assert_allclose(b, x_true, rtol=tol_for(dtype, 1e3),
                               atol=tol_for(dtype, 1e3))


def test_ptcon_estimate(rng):
    n = 35
    d, e = make_pt(rng, n, np.float64)
    a = dense_pt(d, e)
    anorm = np.linalg.norm(a, 1)
    df, ef = d.copy(), e.copy()
    pttrf(df, ef)
    rcond, info = ptcon(df, ef, anorm)
    true_rcond = 1.0 / np.linalg.cond(a, 1)
    assert true_rcond / 10 <= rcond <= true_rcond * 10


def test_ptrfs_refines(rng):
    n = 30
    d, e = make_pt(rng, n, np.float64)
    a = dense_pt(d, e)
    x_true = rand_vector(rng, n, np.float64)
    b = a @ x_true
    df, ef = d.copy(), e.copy()
    pttrf(df, ef)
    x = b.copy()
    pttrs(df, ef, x)
    x += 1e-8
    ferr, berr, info = ptrfs(d, e, df, ef, b, x)
    assert info == 0
    assert np.all(berr < 1e-13)
    err = np.max(np.abs(x - x_true)) / np.max(np.abs(x_true))
    assert err <= ferr[0] * 10 + 1e-15


def test_pt_matvec(rng, complex_dtype):
    n = 8
    d, e = make_pt(rng, n, complex_dtype)
    a = dense_pt(d, e)
    x = rand_vector(rng, n, complex_dtype)
    np.testing.assert_allclose(pt_matvec(d, e, x), a @ x,
                               rtol=tol_for(complex_dtype, 10))
