"""Band families vs dense oracles."""

import numpy as np
import pytest

from repro.lapack77 import (gbcon, gbequ, gbrfs, gbsv, gbtrf, gbtrs, langb,
                            pbcon, pbequ, pbrfs, pbsv, pbtrf, pbtrs)
from repro.storage import band_to_full, full_to_band, full_to_sym_band, \
    sym_band_to_full

from ..conftest import rand_matrix, rand_vector, tol_for


def make_band(rng, n, kl, ku, dtype):
    """Random banded matrix (dense + its factored-band storage)."""
    a = rand_matrix(rng, n, n, dtype)
    for i in range(n):
        for j in range(n):
            if j - i > ku or i - j > kl:
                a[i, j] = 0
    a[np.diag_indices(n)] += 4
    # Factored-band layout: 2*kl+ku+1 rows, input in rows kl..2kl+ku.
    afb = np.zeros((2 * kl + ku + 1, n), dtype=dtype)
    afb[kl:, :] = full_to_band(a, kl, ku)
    return a, afb


def make_spd_band(rng, n, kd, dtype):
    a = rand_matrix(rng, n, n, dtype)
    h = a @ np.conj(a.T)
    for i in range(n):
        for j in range(n):
            if abs(i - j) > kd:
                h[i, j] = 0
    h[np.diag_indices(n)] += 3 * n
    h = (h + np.conj(h.T)) / 2
    return np.asarray(h, dtype=dtype)


@pytest.mark.parametrize("kl,ku", [(1, 1), (2, 3), (3, 1), (0, 2), (2, 0)])
def test_gbtrf_gbtrs_solve(rng, dtype, kl, ku):
    n = 20
    a, afb = make_band(rng, n, kl, ku, dtype)
    x_true = rand_vector(rng, n, dtype)
    b = (a @ x_true).astype(dtype)
    ipiv, info = gbtrf(afb, kl, ku)
    assert info == 0
    gbtrs(afb, kl, ku, ipiv, b)
    np.testing.assert_allclose(b, x_true, rtol=tol_for(dtype, 1e3),
                               atol=tol_for(dtype, 1e3))


@pytest.mark.parametrize("trans", ["N", "T", "C"])
def test_gbtrs_trans(rng, dtype, trans):
    n, kl, ku = 15, 2, 2
    a, afb = make_band(rng, n, kl, ku, dtype)
    op = {"N": a, "T": a.T, "C": np.conj(a.T)}[trans]
    x_true = rand_vector(rng, n, dtype)
    b = (op @ x_true).astype(dtype)
    ipiv, info = gbtrf(afb, kl, ku)
    gbtrs(afb, kl, ku, ipiv, b, trans=trans)
    np.testing.assert_allclose(b, x_true, rtol=tol_for(dtype, 1e3),
                               atol=tol_for(dtype, 1e3))


def test_gbtrf_needs_pivoting(rng):
    # A matrix that without pivoting would hit a zero pivot.
    n, kl, ku = 8, 1, 1
    a = np.diag(np.ones(n - 1), -1) + np.diag(np.ones(n - 1), 1)
    afb = np.zeros((2 * kl + ku + 1, n))
    afb[kl:, :] = full_to_band(a, kl, ku)
    x_true = np.arange(1.0, n + 1)
    b = a @ x_true
    ipiv, info = gbtrf(afb, kl, ku)
    assert info == 0
    gbtrs(afb, kl, ku, ipiv, b)
    np.testing.assert_allclose(b, x_true, atol=1e-12)


def test_gbsv_multiple_rhs(rng, dtype):
    n, kl, ku, nrhs = 25, 2, 1, 3
    a, afb = make_band(rng, n, kl, ku, dtype)
    x_true = rand_matrix(rng, n, nrhs, dtype)
    b = (a @ x_true).astype(dtype)
    ipiv, info = gbsv(afb, kl, ku, b)
    assert info == 0
    np.testing.assert_allclose(b, x_true, rtol=tol_for(dtype, 1e3),
                               atol=tol_for(dtype, 1e3))


def test_gbsv_singular():
    n, kl, ku = 4, 1, 1
    afb = np.zeros((2 * kl + ku + 1, n))
    b = np.ones((n, 1))
    ipiv, info = gbsv(afb, kl, ku, b)
    assert info > 0


def test_gbcon_estimate(rng):
    n, kl, ku = 30, 2, 3
    a, afb = make_band(rng, n, kl, ku, np.float64)
    ab_plain = full_to_band(a, kl, ku)
    anorm = langb("1", ab_plain, kl, ku)
    ipiv, _ = gbtrf(afb, kl, ku)
    rcond, info = gbcon(afb, kl, ku, ipiv, anorm)
    true_rcond = 1.0 / np.linalg.cond(a, 1)
    assert true_rcond / 10 <= rcond <= true_rcond * 10


def test_gbrfs_refines(rng):
    n, kl, ku = 30, 2, 2
    a, afb = make_band(rng, n, kl, ku, np.float64)
    ab_plain = full_to_band(a, kl, ku)
    x_true = rand_vector(rng, n, np.float64)
    b = a @ x_true
    ipiv, _ = gbtrf(afb, kl, ku)
    x = b.copy()
    gbtrs(afb, kl, ku, ipiv, x)
    x += 1e-8
    ferr, berr, info = gbrfs(ab_plain, afb, kl, ku, ipiv, b, x)
    assert info == 0
    assert np.all(berr < 1e-13)


def test_gbequ(rng):
    n, kl, ku = 12, 2, 1
    a, afb = make_band(rng, n, kl, ku, np.float64)
    a[0, :] *= 1e7
    ab_plain = full_to_band(a, kl, ku)
    r, c, rowcnd, colcnd, amax, info = gbequ(ab_plain, kl, ku)
    assert info == 0
    assert rowcnd < 0.1
    scaled = np.outer(r, c) * a
    assert np.abs(scaled).max() <= 1 + 1e-10


@pytest.mark.parametrize("uplo", ["U", "L"])
@pytest.mark.parametrize("kd", [0, 1, 3])
def test_pbtrf_reconstructs(rng, dtype, uplo, kd):
    n = 15
    a = make_spd_band(rng, n, kd, dtype)
    ab = full_to_sym_band(a, kd, uplo=uplo)
    info = pbtrf(ab, uplo)
    assert info == 0
    # Expand the factor and reconstruct.
    n_ = n
    full = np.zeros((n_, n_), dtype=dtype)
    if uplo == "U":
        for j in range(n_):
            lo = max(0, j - kd)
            full[lo:j + 1, j] = ab[kd + lo - j: kd + 1, j]
        rec = np.conj(full.T) @ full
    else:
        for j in range(n_):
            hi = min(n_ - 1, j + kd)
            full[j:hi + 1, j] = ab[0:hi - j + 1, j]
        rec = full @ np.conj(full.T)
    np.testing.assert_allclose(rec, a, rtol=tol_for(dtype, 1e3),
                               atol=tol_for(dtype, 1e3) * np.abs(a).max())


@pytest.mark.parametrize("uplo", ["U", "L"])
def test_pbsv_solves(rng, dtype, uplo):
    n, kd, nrhs = 20, 2, 2
    a = make_spd_band(rng, n, kd, dtype)
    ab = full_to_sym_band(a, kd, uplo=uplo)
    x_true = rand_matrix(rng, n, nrhs, dtype)
    b = (a @ x_true).astype(dtype)
    info = pbsv(ab, b, uplo)
    assert info == 0
    np.testing.assert_allclose(b, x_true, rtol=tol_for(dtype, 1e4),
                               atol=tol_for(dtype, 1e4))


def test_pbtrf_not_pd():
    n, kd = 5, 1
    a = np.eye(n)
    a[3, 3] = -2.0
    ab = full_to_sym_band(a, kd, uplo="U")
    info = pbtrf(ab, "U")
    assert info == 4


def test_pbcon_estimate(rng):
    n, kd = 30, 2
    a = make_spd_band(rng, n, kd, np.float64)
    ab = full_to_sym_band(a, kd, uplo="U")
    anorm = np.linalg.norm(a, 1)
    pbtrf(ab, "U")
    rcond, info = pbcon(ab, anorm, "U")
    true_rcond = 1.0 / np.linalg.cond(a, 1)
    assert true_rcond / 10 <= rcond <= true_rcond * 10


def test_pbrfs_refines(rng):
    n, kd = 25, 2
    a = make_spd_band(rng, n, kd, np.float64)
    ab_orig = full_to_sym_band(a, kd, uplo="U")
    afb = ab_orig.copy()
    pbtrf(afb, "U")
    x_true = rand_vector(rng, n, np.float64)
    b = a @ x_true
    x = b.copy()
    pbtrs(afb, x, "U")
    x += 1e-8
    ferr, berr, info = pbrfs(ab_orig, afb, b, x, "U")
    assert info == 0
    assert np.all(berr < 1e-12)


def test_pbequ(rng):
    n, kd = 10, 2
    a = make_spd_band(rng, n, kd, np.float64)
    a[0, 0] *= 1e9
    ab = full_to_sym_band(a, kd, uplo="U")
    s, scond, amax, info = pbequ(ab, "U")
    assert info == 0
    np.testing.assert_allclose(s * a.diagonal() * s, 1.0, rtol=1e-12)
