"""Symmetric/Hermitian eigen drivers vs numpy.linalg.eigh."""

import numpy as np
import pytest

from repro.lapack77 import (hbev, heev, heevd, heevx, hpev, sbev, sbevd,
                            sbevx, spev, spevd, spevx, stev, stevd, stevx,
                            syev, syevd, syevx)
from repro.lapack77.gen_sym_eigen import hegv, sbgv, spgv, sygv
from repro.storage import full_to_sym_band, pack

from ..conftest import rand_matrix, spd_matrix, tol_for

UPLOS = ["U", "L"]


def sym(rng, n, dtype, hermitian=False):
    a = rand_matrix(rng, n, n, dtype)
    m = a + (np.conj(a.T) if hermitian else a.T)
    if hermitian:
        np.fill_diagonal(m, m.diagonal().real)
    return m


def check_eig(a0, w, z, tol):
    np.testing.assert_allclose(a0 @ z, z * w[None, :].astype(z.dtype),
                               atol=tol * max(1, np.abs(a0).max()))
    n = a0.shape[0]
    np.testing.assert_allclose(np.conj(z.T) @ z, np.eye(n), atol=tol)


@pytest.mark.parametrize("uplo", UPLOS)
@pytest.mark.parametrize("driver", [syev, syevd])
def test_syev_family(rng, real_dtype, uplo, driver):
    n = 20
    a0 = sym(rng, n, real_dtype)
    ref = np.linalg.eigvalsh(a0.astype(np.float64))
    a = a0.copy()
    w, info = driver(a, jobz="V", uplo=uplo)
    assert info == 0
    np.testing.assert_allclose(w, ref, atol=tol_for(real_dtype, 300))
    check_eig(a0, w, a, tol_for(real_dtype, 1000))


@pytest.mark.parametrize("uplo", UPLOS)
@pytest.mark.parametrize("driver", [heev, heevd])
def test_heev_family(rng, complex_dtype, uplo, driver):
    n = 18
    a0 = sym(rng, n, complex_dtype, hermitian=True)
    ref = np.linalg.eigvalsh(a0.astype(np.complex128))
    a = a0.copy()
    w, info = driver(a, jobz="V", uplo=uplo)
    assert info == 0
    assert w.dtype.kind == "f"
    np.testing.assert_allclose(w, ref, atol=tol_for(complex_dtype, 300))
    check_eig(a0, w, a, tol_for(complex_dtype, 1000))


def test_syev_values_only(rng):
    n = 25
    a0 = sym(rng, n, np.float64)
    a = a0.copy()
    w, info = syev(a, jobz="N")
    assert info == 0
    np.testing.assert_allclose(w, np.linalg.eigvalsh(a0), atol=1e-10)


def test_syevd_large_uses_dc(rng):
    n = 120  # above the divide-and-conquer crossover
    a0 = sym(rng, n, np.float64)
    a = a0.copy()
    w, info = syevd(a, jobz="V")
    assert info == 0
    np.testing.assert_allclose(w, np.linalg.eigvalsh(a0), atol=1e-8)
    check_eig(a0, w, a, 1e-8)


def test_syevx_index_range(rng):
    n = 30
    a0 = sym(rng, n, np.float64)
    ref = np.linalg.eigvalsh(a0)
    w, z, m, ifail, info = syevx(a0.copy(), jobz="V", il=5, iu=10)
    assert info == 0 and m == 6
    np.testing.assert_allclose(w, ref[5:11], atol=1e-8)
    for j in range(m):
        r = np.linalg.norm(a0 @ z[:, j] - w[j] * z[:, j])
        assert r < 1e-6


def test_syevx_value_range(rng):
    n = 30
    a0 = sym(rng, n, np.float64)
    ref = np.linalg.eigvalsh(a0)
    vl, vu = -1.0, 2.0
    w, z, m, ifail, info = syevx(a0.copy(), jobz="N", vl=vl, vu=vu)
    expect = ref[(ref > vl) & (ref <= vu)]
    assert m == len(expect)
    np.testing.assert_allclose(w, expect, atol=1e-8)


def test_heevx(rng):
    n = 20
    a0 = sym(rng, n, np.complex128, hermitian=True)
    ref = np.linalg.eigvalsh(a0)
    w, z, m, ifail, info = heevx(a0.copy(), jobz="V", il=0, iu=3)
    assert m == 4
    np.testing.assert_allclose(w, ref[:4], atol=1e-8)
    for j in range(m):
        r = np.linalg.norm(a0 @ z[:, j] - w[j] * z[:, j])
        assert r < 1e-6


def test_stev_drivers(rng):
    n = 30
    d = rng.standard_normal(n)
    e = rng.standard_normal(n - 1)
    t = np.diag(d) + np.diag(e, 1) + np.diag(e, -1)
    ref = np.linalg.eigvalsh(t)
    d1, e1 = d.copy(), e.copy()
    z = np.empty((n, n))
    assert stev(d1, e1, z, jobz="V") == 0
    np.testing.assert_allclose(d1, ref, atol=1e-10)
    d2, e2 = d.copy(), e.copy()
    z2 = np.empty((n, n))
    assert stevd(d2, e2, z2, jobz="V") == 0
    np.testing.assert_allclose(d2, ref, atol=1e-9)
    w, z3, m, ifail, info = stevx(d, e, jobz="V", il=0, iu=2)
    assert m == 3
    np.testing.assert_allclose(w, ref[:3], atol=1e-8)


@pytest.mark.parametrize("uplo", UPLOS)
def test_spev_packed(rng, dtype, uplo):
    n = 15
    hermitian = np.dtype(dtype).kind == "c"
    a0 = sym(rng, n, dtype, hermitian=hermitian)
    ap = pack(a0, uplo=uplo)
    driver = hpev if hermitian else spev
    w, z, info = driver(ap, n, jobz="V", uplo=uplo)
    assert info == 0
    ref = np.linalg.eigvalsh(a0.astype(np.complex128 if hermitian
                                       else np.float64))
    np.testing.assert_allclose(w, ref, atol=tol_for(dtype, 300))
    check_eig(a0, w, z, tol_for(dtype, 1000))


def test_spevd_spevx(rng):
    n = 20
    a0 = sym(rng, n, np.float64)
    ap = pack(a0, uplo="U")
    ref = np.linalg.eigvalsh(a0)
    w, z, info = spevd(ap, n, jobz="V")
    assert info == 0
    np.testing.assert_allclose(w, ref, atol=1e-9)
    w2, z2, m, ifail, info2 = spevx(ap, n, jobz="N", il=0, iu=4)
    assert m == 5
    np.testing.assert_allclose(w2, ref[:5], atol=1e-8)


@pytest.mark.parametrize("uplo", UPLOS)
def test_sbev_band(rng, uplo):
    n, kd = 20, 3
    a0 = sym(rng, n, np.float64)
    for i in range(n):
        for j in range(n):
            if abs(i - j) > kd:
                a0[i, j] = 0
    ab = full_to_sym_band(a0, kd, uplo=uplo)
    ref = np.linalg.eigvalsh(a0)
    w, z, info = sbev(ab, n, jobz="V", uplo=uplo)
    assert info == 0
    np.testing.assert_allclose(w, ref, atol=1e-9)
    check_eig(a0, w, z, 1e-9)
    w2, _, info2 = sbevd(ab, n, jobz="N", uplo=uplo)
    np.testing.assert_allclose(w2, ref, atol=1e-9)
    w3, z3, m, ifail, info3 = sbevx(ab, n, jobz="N", uplo=uplo, il=0, iu=2)
    np.testing.assert_allclose(w3, ref[:3], atol=1e-8)


def test_hbev_band(rng):
    n, kd = 15, 2
    a0 = sym(rng, n, np.complex128, hermitian=True)
    for i in range(n):
        for j in range(n):
            if abs(i - j) > kd:
                a0[i, j] = 0
    ab = full_to_sym_band(a0, kd, uplo="U")
    ref = np.linalg.eigvalsh(a0)
    w, z, info = hbev(ab, n, jobz="V", uplo="U")
    assert info == 0
    np.testing.assert_allclose(w, ref, atol=1e-9)


# -- generalized problems ---------------------------------------------------

@pytest.mark.parametrize("uplo", UPLOS)
@pytest.mark.parametrize("itype", [1, 2, 3])
def test_sygv(rng, uplo, itype):
    sla = pytest.importorskip("scipy.linalg")
    n = 15
    a0 = sym(rng, n, np.float64)
    b0 = spd_matrix(rng, n, np.float64)
    a, b = a0.copy(), b0.copy()
    w, info = sygv(a, b, itype=itype, jobz="V", uplo=uplo)
    assert info == 0
    ref = sla.eigh(a0, b0, type=itype, eigvals_only=True)
    np.testing.assert_allclose(w, ref, atol=1e-8)
    # Residual of the generalized problem.
    for j in range(n):
        x = a[:, j]
        if itype == 1:
            r = a0 @ x - w[j] * (b0 @ x)
        elif itype == 2:
            r = a0 @ (b0 @ x) - w[j] * x
        else:
            r = b0 @ (a0 @ x) - w[j] * x
        assert np.linalg.norm(r) < 1e-6 * max(1, abs(w[j]))


@pytest.mark.parametrize("uplo", UPLOS)
def test_hegv(rng, uplo):
    sla = pytest.importorskip("scipy.linalg")
    n = 12
    a0 = sym(rng, n, np.complex128, hermitian=True)
    b0 = spd_matrix(rng, n, np.complex128)
    a, b = a0.copy(), b0.copy()
    w, info = hegv(a, b, itype=1, jobz="V", uplo=uplo)
    assert info == 0
    ref = sla.eigh(a0, b0, eigvals_only=True)
    np.testing.assert_allclose(w, ref, atol=1e-8)


def test_sygv_b_not_pd():
    a = np.eye(3)
    b = np.eye(3)
    b[1, 1] = -1.0
    w, info = sygv(a.copy(), b, jobz="N")
    assert info == 3 + 2  # n + order of the failing minor


def test_spgv_packed(rng):
    sla = pytest.importorskip("scipy.linalg")
    n = 10
    a0 = sym(rng, n, np.float64)
    b0 = spd_matrix(rng, n, np.float64)
    ap, bp = pack(a0, "U"), pack(b0, "U")
    w, z, info = spgv(ap, bp, n, itype=1, jobz="V", uplo="U")
    assert info == 0
    ref = sla.eigh(a0, b0, eigvals_only=True)
    np.testing.assert_allclose(w, ref, atol=1e-8)


def test_sbgv_band(rng):
    sla = pytest.importorskip("scipy.linalg")
    n, kd = 12, 2
    a0 = sym(rng, n, np.float64)
    b0 = spd_matrix(rng, n, np.float64)
    for i in range(n):
        for j in range(n):
            if abs(i - j) > kd:
                a0[i, j] = 0
                b0[i, j] = 0
    b0 += np.eye(n) * n  # keep definite after truncation
    ab = full_to_sym_band(a0, kd, "U")
    bb = full_to_sym_band(b0, kd, "U")
    w, z, info = sbgv(ab, bb, n, jobz="V", uplo="U")
    assert info == 0
    ref = sla.eigh(a0, b0, eigvals_only=True)
    np.testing.assert_allclose(w, ref, atol=1e-8)


# -- band tridiagonalization (sbtrd/hbtrd) -----------------------------------

@pytest.mark.parametrize("kd", [0, 1, 2, 5])
@pytest.mark.parametrize("uplo", UPLOS)
def test_sbtrd_similarity(rng, uplo, kd):
    from repro.lapack77.band_eigen import sbtrd
    n = 14
    a0 = sym(rng, n, np.float64)
    for i in range(n):
        for j in range(n):
            if abs(i - j) > kd:
                a0[i, j] = 0
    ab = full_to_sym_band(a0, kd, uplo=uplo)
    d, e, q, info = sbtrd(ab, uplo=uplo, vect="V")
    assert info == 0
    t = np.diag(d)
    if n > 1:
        t = t + np.diag(e, 1) + np.diag(e, -1)
    np.testing.assert_allclose(q @ t @ q.T, a0, atol=1e-12)
    np.testing.assert_allclose(q.T @ q, np.eye(n), atol=1e-12)


def test_hbtrd_similarity(rng):
    from repro.lapack77.band_eigen import hbtrd
    n, kd = 12, 3
    a0 = sym(rng, n, np.complex128, hermitian=True)
    for i in range(n):
        for j in range(n):
            if abs(i - j) > kd:
                a0[i, j] = 0
    ab = full_to_sym_band(a0, kd, uplo="U")
    d, e, q, info = hbtrd(ab, uplo="U", vect="V")
    assert info == 0
    assert d.dtype.kind == "f" and e.dtype.kind == "f"
    assert np.all(e >= 0)
    t = np.diag(d.astype(complex)) + np.diag(e, 1) + np.diag(e, -1)
    np.testing.assert_allclose(q @ t @ np.conj(q.T), a0, atol=1e-12)


def test_sbtrd_values_only_matches_vect(rng):
    from repro.lapack77.band_eigen import sbtrd
    n, kd = 20, 2
    a0 = sym(rng, n, np.float64)
    for i in range(n):
        for j in range(n):
            if abs(i - j) > kd:
                a0[i, j] = 0
    ab = full_to_sym_band(a0, kd, uplo="U")
    d1, e1, q1, _ = sbtrd(ab, uplo="U", vect="N")
    assert q1 is None
    d2, e2, q2, _ = sbtrd(ab, uplo="U", vect="V")
    np.testing.assert_allclose(d1, d2)
    np.testing.assert_allclose(e1, e2)
