"""Generalized problems: QZ (gegs/gegv), GSVD (ggsvd), LSE/GLM, and the
test-matrix generators."""

import numpy as np
import pytest
sla = pytest.importorskip("scipy.linalg")

from repro.lapack77 import (gegs, gegv, ggglm, gglse, ggsvd, lagge, laghe,
                            lagsy, laror, latms_like)

from ..conftest import rand_matrix, tol_for


def match_eigs(got, ref, tol):
    """Greedy nearest matching (conjugate pairs defeat naive sorting)."""
    got = list(np.asarray(got, dtype=complex))
    ref = list(np.asarray(ref, dtype=complex))
    assert len(got) == len(ref)
    for g in got:
        dists = [abs(g - r) for r in ref]
        j = int(np.argmin(dists))
        assert dists[j] < tol, f"eigenvalue {g} unmatched (best {dists[j]})"
        ref.pop(j)


@pytest.mark.parametrize("dtype_", [np.float64, np.complex128])
@pytest.mark.parametrize("n", [1, 2, 5, 12, 25])
def test_gegs_factorization(rng, dtype_, n):
    a = rand_matrix(rng, n, n, dtype_)
    b = rand_matrix(rng, n, n, dtype_)
    alpha, beta, s, t, vsl, vsr, info = gegs(a.copy(), b.copy())
    assert info == 0
    np.testing.assert_allclose(vsl @ s @ np.conj(vsr.T), a, atol=1e-10)
    np.testing.assert_allclose(vsl @ t @ np.conj(vsr.T), b, atol=1e-10)
    # Triangular S, T; unitary factors.
    assert np.abs(np.tril(s, -1)).max() < 1e-10
    assert np.abs(np.tril(t, -1)).max() < 1e-10
    np.testing.assert_allclose(np.conj(vsl.T) @ vsl, np.eye(n), atol=1e-10)
    np.testing.assert_allclose(np.conj(vsr.T) @ vsr, np.eye(n), atol=1e-10)
    # Generalized eigenvalues match scipy.
    match_eigs(alpha / beta, sla.eigvals(a, b), 1e-6)


@pytest.mark.parametrize("dtype_", [np.float64, np.complex128])
def test_gegv_eigenvectors(rng, dtype_):
    n = 10
    a = rand_matrix(rng, n, n, dtype_)
    b = rand_matrix(rng, n, n, dtype_)
    alpha, beta, vl, vr, info = gegv(a.copy(), b.copy(), want_vl=True,
                                     want_vr=True)
    assert info == 0
    ac, bc = a.astype(complex), b.astype(complex)
    for j in range(n):
        x = vr[:, j]
        r = beta[j] * (ac @ x) - alpha[j] * (bc @ x)
        assert np.linalg.norm(r) < 1e-8 * max(abs(alpha[j]), abs(beta[j]), 1)
        y = vl[:, j]
        rl = beta[j] * (np.conj(y) @ ac) - alpha[j] * (np.conj(y) @ bc)
        assert np.linalg.norm(rl) < 1e-8 * max(abs(alpha[j]), abs(beta[j]), 1)


def test_gegv_singular_b(rng):
    # Singular B: one infinite eigenvalue (beta ≈ 0).
    n = 5
    a = rand_matrix(rng, n, n, np.float64)
    b = rand_matrix(rng, n, n, np.float64)
    b[:, 0] = 0  # rank-deficient
    alpha, beta, vl, vr, info = gegv(a.copy(), b.copy())
    assert info == 0
    assert np.min(np.abs(beta)) < 1e-8 * np.max(np.abs(beta))


def d1_of(m, n, alpha):
    d = np.zeros((m, n))
    kk = min(m, n)
    d[np.arange(kk), np.arange(kk)] = alpha[:kk]
    return d


def d2_of(p, n, beta, k):
    d = np.zeros((p, n))
    for i in range(k, n):
        if i - k < p:
            d[i - k, i] = beta[i]
    return d


@pytest.mark.parametrize("dtype_", [np.float64, np.complex128])
@pytest.mark.parametrize("m,p,n", [(6, 5, 4), (8, 3, 5), (4, 4, 4),
                                   (10, 2, 6), (3, 5, 4)])
def test_ggsvd(rng, dtype_, m, p, n):
    a = rand_matrix(rng, m, n, dtype_)
    b = rand_matrix(rng, p, n, dtype_)
    alpha, beta, k, l, u, v, q, r, info = ggsvd(a.copy(), b.copy())
    assert info == 0
    assert k + l == n and l <= p
    np.testing.assert_allclose(alpha ** 2 + beta ** 2, 1.0, atol=1e-12)
    np.testing.assert_allclose(
        u @ d1_of(m, n, alpha).astype(u.dtype) @ r @ np.conj(q.T), a,
        atol=1e-10)
    np.testing.assert_allclose(
        v @ d2_of(p, n, beta, k).astype(v.dtype) @ r @ np.conj(q.T), b,
        atol=1e-10)
    np.testing.assert_allclose(np.conj(q.T) @ q, np.eye(n), atol=1e-10)
    assert np.abs(np.tril(r, -1)).max() < 1e-12


def test_ggsvd_vs_scipy_cossin_values(rng):
    # The generalized singular values alpha/beta match the eigenvalues of
    # the pencil (AᵀA, BᵀB).
    m, p, n = 7, 6, 5
    a = rand_matrix(rng, m, n, np.float64)
    b = rand_matrix(rng, p, n, np.float64)
    alpha, beta, k, l, u, v, q, r, info = ggsvd(a.copy(), b.copy())
    gsv = np.sort((alpha / np.where(beta == 0, np.inf, beta))[beta > 0])
    ref = np.sort(np.sqrt(np.abs(sla.eigvals(a.T @ a, b.T @ b).real)))
    np.testing.assert_allclose(gsv, ref[-len(gsv):], rtol=1e-7)


@pytest.mark.parametrize("dtype_", [np.float64, np.complex128])
def test_gglse(rng, dtype_):
    m, n, p = 10, 6, 3
    a = rand_matrix(rng, m, n, dtype_)
    b = rand_matrix(rng, p, n, dtype_)
    c = rand_matrix(rng, m, 1, dtype_)[:, 0]
    d = rand_matrix(rng, p, 1, dtype_)[:, 0]
    x, info = gglse(a.copy(), b.copy(), c.copy(), d.copy())
    assert info == 0
    # Constraint satisfied.
    np.testing.assert_allclose(b @ x, d, atol=1e-10)
    # Optimality: compare to scipy's LSE via direct KKT solve.
    # KKT: [[2AᴴA, Bᴴ], [B, 0]] [x; λ] = [2Aᴴc; d]
    kkt = np.zeros((n + p, n + p), dtype=complex)
    kkt[:n, :n] = 2 * np.conj(a.T) @ a
    kkt[:n, n:] = np.conj(b.T)
    kkt[n:, :n] = b
    rhs = np.concatenate([2 * np.conj(a.T) @ c, d])
    ref = np.linalg.solve(kkt, rhs)[:n]
    np.testing.assert_allclose(x, ref, atol=1e-8)


def test_gglse_exact_interpolation(rng):
    # With p = n the constraint determines x fully.
    n = 4
    a = rand_matrix(rng, 6, n, np.float64)
    b = rand_matrix(rng, n, n, np.float64) + np.eye(n)
    c = rand_matrix(rng, 6, 1, np.float64)[:, 0]
    d = rand_matrix(rng, n, 1, np.float64)[:, 0]
    x, info = gglse(a.copy(), b.copy(), c.copy(), d.copy())
    np.testing.assert_allclose(x, np.linalg.solve(b, d), atol=1e-10)


@pytest.mark.parametrize("dtype_", [np.float64, np.complex128])
def test_ggglm(rng, dtype_):
    n, m, p = 8, 4, 6
    a = rand_matrix(rng, n, m, dtype_)
    b = rand_matrix(rng, n, p, dtype_)
    d = rand_matrix(rng, n, 1, dtype_)[:, 0]
    x, y, info = ggglm(a.copy(), b.copy(), d.copy())
    assert info == 0
    # Constraint: d = A x + B y.
    np.testing.assert_allclose(a @ x + b @ y, d, atol=1e-10)
    # Optimality of ‖y‖: KKT for min yᴴy s.t. Ax + By = d.
    # Stationarity: 2y = Bᴴλ, 0 = Aᴴλ.
    kkt = np.zeros((m + p + n, m + p + n), dtype=complex)
    kkt[:p, :p] = 2 * np.eye(p)
    kkt[:p, p + m:] = -np.conj(b.T)
    kkt[p:p + m, p + m:] = -np.conj(a.T)
    kkt[p + m:, :p] = b
    kkt[p + m:, p:p + m] = a
    rhs = np.concatenate([np.zeros(p + m), d])
    sol = np.linalg.solve(kkt, rhs)
    np.testing.assert_allclose(y, sol[:p], atol=1e-8)
    np.testing.assert_allclose(x, sol[p:p + m], atol=1e-8)


def test_ggglm_zero_y_when_consistent(rng):
    # If d lies in range(A), the GLM solution needs no noise: y = 0.
    n, m, p = 6, 4, 3
    a = rand_matrix(rng, n, m, np.float64)
    b = rand_matrix(rng, n, p, np.float64)
    x_true = rand_matrix(rng, m, 1, np.float64)[:, 0]
    d = a @ x_true
    x, y, info = ggglm(a.copy(), b.copy(), d.copy())
    np.testing.assert_allclose(y, 0, atol=1e-10)
    np.testing.assert_allclose(x, x_true, atol=1e-9)


# -- generators --------------------------------------------------------------

@pytest.mark.parametrize("dtype_", [np.float64, np.complex128])
def test_laror_haar_unitary(rng, dtype_):
    q = laror(8, dtype=dtype_, rng=rng)
    np.testing.assert_allclose(np.conj(q.T) @ q, np.eye(8), atol=1e-12)


@pytest.mark.parametrize("dtype_", [np.float64, np.complex128])
@pytest.mark.parametrize("kl,ku", [(None, None), (2, 1), (1, 3), (2, 0),
                                   (0, 2)])
def test_lagge_singular_values(rng, dtype_, kl, ku):
    m = n = 7
    d = np.array([5.0, 4.0, 3.0, 2.0, 1.0, 0.7, 0.3])
    a = lagge(m, n, d, kl=kl, ku=ku, dtype=dtype_, rng=rng)
    np.testing.assert_allclose(np.linalg.svd(a, compute_uv=False), d,
                               rtol=1e-10)
    if kl is not None:
        for i in range(m):
            for j in range(n):
                if j - i > ku or i - j > kl:
                    assert a[i, j] == 0


def test_lagge_rectangular(rng):
    d = np.array([3.0, 2.0, 1.0])
    a = lagge(8, 3, d, rng=rng)
    np.testing.assert_allclose(np.linalg.svd(a, compute_uv=False), d,
                               rtol=1e-10)


def test_lagsy_laghe_eigenvalues(rng):
    d = np.array([-2.0, -0.5, 1.0, 3.0, 10.0])
    s = lagsy(5, d, rng=rng)
    np.testing.assert_allclose(np.linalg.eigvalsh(s), np.sort(d), atol=1e-10)
    h = laghe(5, d, rng=rng)
    assert np.iscomplexobj(h)
    np.testing.assert_allclose(np.linalg.eigvalsh(h), np.sort(d), atol=1e-10)


def test_latms_like_condition(rng):
    a, s = latms_like(10, 10, cond=1e3, rng=rng)
    np.testing.assert_allclose(np.linalg.cond(a), 1e3, rtol=1e-6)
    a2, s2 = latms_like(6, 9, cond=50, mode="arithmetic", rng=rng)
    np.testing.assert_allclose(np.linalg.svd(a2, compute_uv=False), s2,
                               rtol=1e-9)
