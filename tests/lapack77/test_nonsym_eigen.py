"""Nonsymmetric eigensolvers: Hessenberg, Schur, eigenvectors, ordering."""

import numpy as np
import pytest

from repro.lapack77.hessenberg import gebal, gebak, gehrd, orghr
from repro.lapack77.nonsym_eigen import gees, geesx, geev, geevx
from repro.lapack77.schur import (eig_of_schur, hseqr, schur_blocks, trevc,
                                  trexc, trsen, trsyl)

from ..conftest import rand_matrix, tol_for


def sorted_eigs(w):
    w = np.asarray(w, dtype=complex)
    return w[np.lexsort((w.imag, w.real))]


@pytest.mark.parametrize("n", [1, 2, 5, 12, 30])
def test_gehrd_similarity(rng, dtype, n):
    a0 = rand_matrix(rng, n, n, dtype)
    a = a0.copy()
    tau = gehrd(a)
    q = orghr(a, tau)
    h = np.triu(a, -1)
    np.testing.assert_allclose(np.conj(q.T) @ a0 @ q, h, rtol=0,
                               atol=tol_for(dtype, 500) * max(
                                   1, np.abs(a0).max()))
    np.testing.assert_allclose(np.conj(q.T) @ q, np.eye(n), rtol=0,
                               atol=tol_for(dtype, 200))


def test_gebal_similarity_preserves_eigs(rng):
    n = 10
    a0 = rand_matrix(rng, n, n, np.float64)
    a0[0] *= 1e6  # badly scaled
    a = a0.copy()
    ilo, ihi, scale = gebal(a, job="B")
    np.testing.assert_allclose(sorted_eigs(np.linalg.eigvals(a)),
                               sorted_eigs(np.linalg.eigvals(a0)),
                               rtol=1e-6, atol=1e-8)


def test_gebal_isolates_triangular_part():
    # A matrix with an isolated eigenvalue (row of zeros off-diagonal).
    a = np.array([[1.0, 0.0, 0.0],
                  [2.0, 3.0, 4.0],
                  [5.0, 6.0, 7.0]])
    ilo, ihi, scale = gebal(a.copy(), job="P")
    assert ilo > 0 or ihi < 2


@pytest.mark.parametrize("n", [2, 6, 15, 40])
def test_hseqr_real_eigenvalues(rng, n):
    a0 = rand_matrix(rng, n, n, np.float64)
    a = a0.copy()
    tau = gehrd(a)
    z = orghr(a, tau)
    for j in range(n - 2):
        a[j + 2:, j] = 0
    w, info = hseqr(a, z)
    assert info == 0
    np.testing.assert_allclose(sorted_eigs(w),
                               sorted_eigs(np.linalg.eigvals(a0)),
                               rtol=1e-8, atol=1e-8)
    # Schur: A = Z T Z^T with T quasi-triangular.
    np.testing.assert_allclose(z @ a @ z.T, a0, atol=1e-9)
    assert np.allclose(np.tril(a, -2), 0)
    np.testing.assert_allclose(z.T @ z, np.eye(n), atol=1e-10)


@pytest.mark.parametrize("n", [2, 6, 15, 40])
def test_hseqr_complex_eigenvalues(rng, n):
    a0 = rand_matrix(rng, n, n, np.complex128)
    a = a0.copy()
    tau = gehrd(a)
    z = orghr(a, tau)
    for j in range(n - 2):
        a[j + 2:, j] = 0
    w, info = hseqr(a, z)
    assert info == 0
    np.testing.assert_allclose(sorted_eigs(w),
                               sorted_eigs(np.linalg.eigvals(a0)),
                               rtol=1e-8, atol=1e-8)
    np.testing.assert_allclose(z @ a @ np.conj(z.T), a0, atol=1e-9)
    assert np.allclose(np.tril(a, -1), 0)


def test_hseqr_defective_jordan_block():
    # Jordan block: classic hard case (eigenvalues equal, defective).
    n = 6
    a = np.eye(n) * 2 + np.diag(np.ones(n - 1), 1)
    h = a.copy()
    w, info = hseqr(h, None, wantt=False)
    assert info == 0
    np.testing.assert_allclose(np.sort(w.real), np.full(n, 2.0), atol=1e-2)
    assert np.allclose(w.imag, 0, atol=1e-2)


@pytest.mark.parametrize("dtype_", [np.float64, np.complex128])
def test_geev_eigenpairs(rng, dtype_):
    n = 20
    a0 = rand_matrix(rng, n, n, dtype_)
    w, vl, vr, info = geev(a0.copy(), jobvl="V", jobvr="V")
    assert info == 0
    ref = np.linalg.eigvals(a0)
    np.testing.assert_allclose(sorted_eigs(w), sorted_eigs(ref), atol=1e-8)
    ac = a0.astype(complex)
    for j in range(n):
        assert np.linalg.norm(ac @ vr[:, j] - w[j] * vr[:, j]) < 1e-7
        assert np.linalg.norm(np.conj(vl[:, j]) @ ac
                              - w[j] * np.conj(vl[:, j])) < 1e-7


def test_geev_conjugate_pairs_real_input(rng):
    # Rotation-like matrix: guaranteed complex pairs.
    a = np.array([[0.0, -2.0], [2.0, 0.0]])
    w, vl, vr, info = geev(a.copy(), jobvr="V")
    assert info == 0
    np.testing.assert_allclose(sorted_eigs(w), [-2j, 2j], atol=1e-12)


def test_gees_schur_form(rng):
    n = 15
    a0 = rand_matrix(rng, n, n, np.float64)
    t = a0.copy()
    w, vs, sdim, info = gees(t, jobvs="V")
    assert info == 0
    np.testing.assert_allclose(vs @ t @ vs.T, a0, atol=1e-9)
    np.testing.assert_allclose(vs.T @ vs, np.eye(n), atol=1e-10)
    np.testing.assert_allclose(sorted_eigs(w),
                               sorted_eigs(np.linalg.eigvals(a0)), atol=1e-8)


def test_gees_with_selection(rng):
    n = 12
    a0 = rand_matrix(rng, n, n, np.float64)
    t = a0.copy()
    w, vs, sdim, info = gees(t, jobvs="V",
                             select=lambda lam: lam.real > 0)
    assert info == 0
    ref = np.linalg.eigvals(a0)
    expect = np.sum(ref.real > 0)
    # 2x2 blocks move as units, so sdim can exceed by pair-partners only.
    assert sdim >= expect - 1 and sdim <= expect + 1
    # Leading sdim eigenvalues of T include all the selected ones.
    lead = eig_of_schur(t)[:sdim]
    assert np.sum(lead.real > 0) == expect
    np.testing.assert_allclose(vs @ t @ vs.T, a0, atol=1e-8)


def test_gees_complex_selection(rng):
    n = 10
    a0 = rand_matrix(rng, n, n, np.complex128)
    t = a0.copy()
    w, vs, sdim, info = gees(t, jobvs="V",
                             select=lambda lam: abs(lam) > 0.8)
    assert info == 0
    ref = np.linalg.eigvals(a0)
    assert sdim == np.sum(np.abs(ref) > 0.8)
    lead = np.diag(t)[:sdim]
    assert np.all(np.abs(lead) > 0.8)
    np.testing.assert_allclose(vs @ t @ np.conj(vs.T), a0, atol=1e-8)


def test_trevc_right_vectors_triangular(rng):
    n = 8
    t = np.triu(rand_matrix(rng, n, n, np.complex128))
    t[np.arange(n), np.arange(n)] += np.arange(n) * 2  # distinct eigs
    v = trevc(t, None, side="R")
    for j in range(n):
        lam = t[j, j]
        assert np.linalg.norm(t @ v[:, j] - lam * v[:, j]) < 1e-8


def test_trevc_left_vectors(rng):
    n = 8
    t = np.triu(rand_matrix(rng, n, n, np.complex128))
    t[np.arange(n), np.arange(n)] += np.arange(n) * 2
    v = trevc(t, None, side="L")
    for j in range(n):
        lam = t[j, j]
        assert np.linalg.norm(np.conj(v[:, j]) @ t
                              - lam * np.conj(v[:, j])) < 1e-8


def test_trexc_moves_eigenvalue(rng):
    n = 8
    a0 = rand_matrix(rng, n, n, np.float64)
    t = a0.copy()
    w, vs, sdim, info = gees(t, jobvs="V")
    blocks = schur_blocks(t)
    # Move the last block to the front.
    start, size = blocks[-1]
    target = eig_of_schur(t)[start]
    info = trexc(t, vs, start, 0)
    assert info == 0
    np.testing.assert_allclose(vs @ t @ vs.T, a0, atol=1e-8)
    lead = eig_of_schur(t)[0]
    candidates = eig_of_schur(t)[:2]
    assert np.min(np.abs(candidates - target)) < 1e-8


@pytest.mark.parametrize("isgn", [1, -1])
@pytest.mark.parametrize("dtype_", [np.float64, np.complex128])
def test_trsyl(rng, isgn, dtype_):
    m, n = 6, 5
    a0 = rand_matrix(rng, m, m, dtype_)
    b0 = rand_matrix(rng, n, n, dtype_)
    ta = a0.copy()
    wa, qa, _, ia = gees(ta, jobvs="V")
    tb = b0.copy()
    wb, qb, _, ib = gees(tb, jobvs="V")
    c = rand_matrix(rng, m, n, dtype_)
    c0 = c.copy()
    scale, info = trsyl(ta, tb, c, isgn=isgn)
    resid = ta @ c + isgn * (c @ tb) - scale * c0
    assert np.abs(resid).max() < 1e-8


def test_trsen_condition_numbers(rng):
    n = 10
    a0 = rand_matrix(rng, n, n, np.float64)
    t = a0.copy()
    w, vs, sdim, info = gees(t, jobvs="V")
    select = np.zeros(n, dtype=bool)
    select[:3] = True  # pick current leading blocks (no moves needed)
    w2, sdim2, s_cond, sep, rinfo = trsen(t, vs, select.copy())
    assert 0 < s_cond <= 1
    assert sep >= 0
    np.testing.assert_allclose(vs @ t @ vs.T, a0, atol=1e-8)


def test_geesx(rng):
    n = 10
    a0 = rand_matrix(rng, n, n, np.float64)
    t = a0.copy()
    w, vs, sdim, rconde, rcondv, info = geesx(
        t, jobvs="V", select=lambda lam: lam.real < 0, sense="B")
    assert info == 0
    assert 0 < rconde <= 1
    np.testing.assert_allclose(vs @ t @ vs.T, a0, atol=1e-8)


def test_geevx(rng):
    n = 12
    a0 = rand_matrix(rng, n, n, np.float64)
    (w, vl, vr, ilo, ihi, scale, abnrm, rconde, rcondv,
     info) = geevx(a0.copy(), jobvl="V", jobvr="V", sense="B")
    assert info == 0
    np.testing.assert_allclose(sorted_eigs(w),
                               sorted_eigs(np.linalg.eigvals(a0)),
                               atol=1e-8)
    assert np.all((rconde > 0) & (rconde <= 1 + 1e-12))
    ac = a0.astype(complex)
    for j in range(n):
        assert np.linalg.norm(ac @ vr[:, j] - w[j] * vr[:, j]) < 1e-7


def test_geevx_condition_number_meaningful(rng):
    # A nearly-defective matrix has tiny eigenvalue condition numbers.
    eps = 1e-8
    a = np.array([[1.0, 1.0], [eps, 1.0]])
    # balanc='N': diagonal balancing would genuinely repair this matrix's
    # conditioning (that is what balancing is for), so measure it raw.
    *_, rconde, rcondv, info = geevx(a.copy(), balanc="N", sense="E")
    assert info == 0
    assert np.all(rconde < 1e-3)  # highly sensitive eigenvalues
    b = np.diag([1.0, 2.0])  # perfectly conditioned
    *_, rconde_b, rcondv_b, info_b = geevx(b.copy(), sense="E")
    assert np.allclose(rconde_b, 1.0)
