"""LU family vs scipy/numpy oracles and factorization identities."""

import numpy as np
import pytest
sla = pytest.importorskip("scipy.linalg")

from repro import config
from repro.errors import IllegalArgument
from repro.lapack77 import (gecon, geequ, gerfs, gesv, getf2, getrf, getri,
                            getrs, lange, laqge)

from ..conftest import rand_matrix, tol_for, well_conditioned


def reconstruct_lu(lu, ipiv, m, n):
    """Rebuild P·L·U from the packed factor output."""
    k = min(m, n)
    l = np.tril(lu[:, :k], -1)
    l[np.arange(k), np.arange(k)] = 1
    u = np.triu(lu[:k, :])
    a = l @ u
    # Undo the swaps (they were applied forward during factorization).
    for j in range(k - 1, -1, -1):
        p = ipiv[j]
        if p != j:
            a[[j, p], :] = a[[p, j], :]
    return a


@pytest.mark.parametrize("m,n", [(6, 6), (8, 5), (5, 8), (1, 1), (3, 1)])
def test_getf2_reconstructs(rng, dtype, m, n):
    a0 = rand_matrix(rng, m, n, dtype)
    a = a0.copy()
    ipiv, info = getf2(a)
    assert info == 0
    rec = reconstruct_lu(a, ipiv, m, n)
    np.testing.assert_allclose(rec, a0, rtol=tol_for(dtype, 100),
                               atol=tol_for(dtype, 100))


def test_getrf_blocked_matches_unblocked(rng, dtype):
    n = 80
    a0 = well_conditioned(rng, n, dtype)
    a_blocked = a0.copy()
    a_unblocked = a0.copy()
    with config.block_size_override("getrf", 16):
        ipb, infob = getrf(a_blocked)
    with config.block_size_override("getrf", 1):
        ipu, infou = getrf(a_unblocked)
    assert infob == infou == 0
    np.testing.assert_array_equal(ipb, ipu)
    np.testing.assert_allclose(a_blocked, a_unblocked,
                               rtol=tol_for(dtype, 1000),
                               atol=tol_for(dtype, 1000))


def test_getrf_rectangular_blocked(rng):
    m, n = 100, 70
    a0 = rand_matrix(rng, m, n, np.float64)
    a = a0.copy()
    with config.block_size_override("getrf", 16):
        ipiv, info = getrf(a)
    assert info == 0
    rec = reconstruct_lu(a, ipiv, m, n)
    np.testing.assert_allclose(rec, a0, rtol=1e-10, atol=1e-10)


def test_getrf_singular_reports_first_zero_pivot():
    a = np.zeros((4, 4))
    a[0, 0] = 1.0
    ipiv, info = getrf(a)
    assert info > 0


def test_getrf_matches_scipy_pivots(rng):
    n = 30
    a0 = rand_matrix(rng, n, n, np.float64)
    a = a0.copy()
    ipiv, info = getrf(a)
    lu_s, piv_s = sla.lu_factor(a0)
    np.testing.assert_array_equal(ipiv, piv_s)
    np.testing.assert_allclose(a, lu_s, rtol=1e-10, atol=1e-12)


@pytest.mark.parametrize("trans", ["N", "T", "C"])
@pytest.mark.parametrize("nrhs", [1, 4])
def test_getrs_solves(rng, dtype, trans, nrhs):
    n = 25
    a0 = well_conditioned(rng, n, dtype)
    x_true = rand_matrix(rng, n, nrhs, dtype)
    op = {"N": a0, "T": a0.T, "C": np.conj(a0.T)}[trans]
    b = (op @ x_true).astype(dtype)
    a = a0.copy()
    ipiv, info = getrf(a)
    assert info == 0
    getrs(a, ipiv, b, trans=trans)
    np.testing.assert_allclose(b, x_true, rtol=tol_for(dtype, 1e3),
                               atol=tol_for(dtype, 1e3))


def test_getrs_vector_rhs(rng, dtype):
    n = 10
    a0 = well_conditioned(rng, n, dtype)
    x = np.ones(n, dtype=dtype)
    b = (a0 @ x).astype(dtype)
    a = a0.copy()
    ipiv, _ = getrf(a)
    getrs(a, ipiv, b)
    np.testing.assert_allclose(b, x, rtol=tol_for(dtype, 1e3),
                               atol=tol_for(dtype, 1e3))


def test_gesv_end_to_end(rng, dtype):
    n, nrhs = 40, 3
    a0 = well_conditioned(rng, n, dtype)
    x_true = rand_matrix(rng, n, nrhs, dtype)
    b = (a0 @ x_true).astype(dtype)
    a = a0.copy()
    ipiv, info = gesv(a, b)
    assert info == 0
    np.testing.assert_allclose(b, x_true, rtol=tol_for(dtype, 1e4),
                               atol=tol_for(dtype, 1e4))


def test_gesv_singular_info_positive():
    a = np.ones((3, 3))
    b = np.ones((3, 1))
    b0 = b.copy()
    ipiv, info = gesv(a, b)
    assert info > 0
    # b untouched on failure
    np.testing.assert_array_equal(b, b0)


def test_gesv_shape_errors():
    with pytest.raises(IllegalArgument):
        gesv(np.ones((3, 4)), np.ones((3, 1)))
    with pytest.raises(IllegalArgument):
        gesv(np.ones((3, 3)), np.ones((4, 1)))


@pytest.mark.parametrize("n", [1, 7, 40])
def test_getri_inverse(rng, dtype, n):
    a0 = well_conditioned(rng, n, dtype)
    a = a0.copy()
    ipiv, info = getrf(a)
    assert info == 0
    info = getri(a, ipiv)
    assert info == 0
    np.testing.assert_allclose(a @ a0, np.eye(n), rtol=0,
                               atol=tol_for(dtype, 1e4))


def test_getri_blocked_vs_unblocked(rng):
    n = 90
    a0 = well_conditioned(rng, n, np.float64)
    a1, a2 = a0.copy(), a0.copy()
    ip1, _ = getrf(a1)
    ip2, _ = getrf(a2)
    getri(a1, ip1)
    with config.block_size_override("getri", 1):
        getri(a2, ip2)
    np.testing.assert_allclose(a1, a2, rtol=1e-9, atol=1e-9)


def test_getri_small_lwork_falls_back(rng):
    n = 40
    a0 = well_conditioned(rng, n, np.float64)
    a = a0.copy()
    ipiv, _ = getrf(a)
    info = getri(a, ipiv, lwork=n)  # forces nb == 1 path
    assert info == 0
    np.testing.assert_allclose(a @ a0, np.eye(n), atol=1e-8)


def test_getri_zero_diagonal_info():
    a = np.triu(np.ones((3, 3)))
    a[1, 1] = 0.0
    info = getri(a, np.arange(3))
    assert info == 2


def test_gecon_tracks_true_condition(rng):
    n = 50
    a0 = well_conditioned(rng, n, np.float64)
    anorm = lange("1", a0)
    a = a0.copy()
    ipiv, _ = getrf(a)
    rcond, info = gecon(a, anorm, norm="1")
    assert info == 0
    true_rcond = 1.0 / (np.linalg.cond(a0, 1))
    # Estimator is within a small factor of the truth.
    assert true_rcond / 10 <= rcond <= true_rcond * 10


def test_gecon_inf_norm(rng):
    n = 30
    a0 = well_conditioned(rng, n, np.float64)
    anorm = lange("I", a0)
    a = a0.copy()
    getrf(a)
    rcond, _ = gecon(a, anorm, norm="I")
    true_rcond = 1.0 / np.linalg.cond(a0, np.inf)
    assert true_rcond / 10 <= rcond <= true_rcond * 10


def test_gecon_zero_norm_short_circuits(rng):
    a = np.eye(4)
    rcond, info = gecon(a, 0.0)
    assert rcond == 0.0 and info == 0


@pytest.mark.parametrize("trans", ["N", "T"])
def test_gerfs_improves_and_bounds(rng, trans):
    n, nrhs = 60, 2
    rng2 = np.random.default_rng(7)
    a0 = rand_matrix(rng2, n, n, np.float64)
    a0 += np.eye(n) * 2
    x_true = rand_matrix(rng2, n, nrhs, np.float64)
    op = a0 if trans == "N" else a0.T
    b = op @ x_true
    af = a0.copy()
    ipiv, _ = getrf(af)
    x = b.copy()
    getrs(af, ipiv, x, trans=trans)
    # Perturb the solution so refinement has work to do.
    x_bad = x + 1e-6 * rng2.standard_normal(x.shape)
    ferr, berr, info = gerfs(a0, af, ipiv, b, x_bad, trans=trans)
    assert info == 0
    err = np.max(np.abs(x_bad - x_true), axis=0) / np.max(np.abs(x_true), axis=0)
    # Backward error at roundoff scale, forward error bound honoured.
    assert np.all(berr < 1e-13)
    assert np.all(err <= ferr * 10 + 1e-15)


def test_geequ_scales_to_unit_rows_and_cols(rng):
    n = 20
    a = rand_matrix(rng, n, n, np.float64)
    a[0] *= 1e8   # badly scaled row
    r, c, rowcnd, colcnd, amax, info = geequ(a)
    assert info == 0
    scaled = a * np.outer(r, c)
    assert np.abs(scaled).max() <= 1 + 1e-12
    assert rowcnd < 0.1  # badly scaled detected


def test_geequ_zero_row_and_column():
    a = np.ones((3, 3))
    a[1] = 0
    *_, info = geequ(a)
    assert info == 2
    a = np.ones((3, 3))
    a[:, 2] = 0
    # zero column can only be flagged if no zero row precedes it
    r, c, rowcnd, colcnd, amax, info = geequ(a)
    assert info == 3 + 3  # m + j + 1 = 3 + 2 + 1
    assert info == 6


def test_laqge_applies_scaling(rng):
    n = 10
    a = rand_matrix(rng, n, n, np.float64)
    a[0] *= 1e9
    r, c, rowcnd, colcnd, amax, info = geequ(a)
    a_scaled = a.copy()
    equed = laqge(a_scaled, r, c, rowcnd, colcnd, amax)
    assert equed in ("R", "B")
    assert np.abs(a_scaled).max() < np.abs(a).max()


def test_laqge_well_scaled_noop(rng):
    a = np.eye(5) + 0.1 * rand_matrix(rng, 5, 5, np.float64)
    r, c, rowcnd, colcnd, amax, info = geequ(a)
    a_scaled = a.copy()
    equed = laqge(a_scaled, r, c, rowcnd, colcnd, amax)
    assert equed == "N"
    np.testing.assert_array_equal(a_scaled, a)


# -- standalone triangular routines (trtri/trtrs/trcon) ----------------------

@pytest.mark.parametrize("uplo", ["U", "L"])
@pytest.mark.parametrize("diag", ["N", "U"])
def test_trtri_inverts(rng, dtype, uplo, diag):
    from repro.lapack77 import trtri
    n = 10
    a = rand_matrix(rng, n, n, dtype)
    a[np.diag_indices(n)] += 3
    t = np.triu(a) if uplo == "U" else np.tril(a)
    t_eff = t.copy()
    if diag == "U":
        np.fill_diagonal(t_eff, 1)
    inv = t.copy()
    info = trtri(inv, uplo, diag)
    assert info == 0
    inv_eff = np.triu(inv) if uplo == "U" else np.tril(inv)
    if diag == "U":
        np.fill_diagonal(inv_eff, 1)
    np.testing.assert_allclose(inv_eff @ t_eff, np.eye(n), rtol=0,
                               atol=tol_for(dtype, 1e3))


def test_trtri_singular_info():
    from repro.lapack77 import trtri
    a = np.triu(np.ones((4, 4)))
    a[2, 2] = 0
    assert trtri(a, "U", "N") == 3


@pytest.mark.parametrize("uplo", ["U", "L"])
@pytest.mark.parametrize("trans", ["N", "T", "C"])
def test_trtrs_solves(rng, dtype, uplo, trans):
    from repro.lapack77 import trtrs
    n = 8
    a = rand_matrix(rng, n, n, dtype)
    a[np.diag_indices(n)] += 3
    t = np.triu(a) if uplo == "U" else np.tril(a)
    op = {"N": t, "T": t.T, "C": np.conj(t.T)}[trans]
    x_true = rand_matrix(rng, n, 2, dtype)
    b = (op @ x_true).astype(dtype)
    info = trtrs(t, b, uplo=uplo, trans=trans)
    assert info == 0
    np.testing.assert_allclose(b, x_true, rtol=tol_for(dtype, 1e3),
                               atol=tol_for(dtype, 1e3))


def test_trtrs_singular_leaves_b():
    from repro.lapack77 import trtrs
    a = np.triu(np.ones((3, 3)))
    a[1, 1] = 0
    b = np.ones(3)
    b0 = b.copy()
    assert trtrs(a, b) == 2
    np.testing.assert_array_equal(b, b0)


def test_trcon_estimate(rng):
    from repro.lapack77 import trcon
    n = 30
    a = rand_matrix(rng, n, n, np.float64)
    a[np.diag_indices(n)] += n
    t = np.triu(a)
    rcond, info = trcon(t, "U")
    true_rcond = 1.0 / np.linalg.cond(t, 1)
    assert true_rcond / 10 <= rcond <= true_rcond * 10
