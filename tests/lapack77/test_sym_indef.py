"""Bunch–Kaufman family: solve correctness, pivot structure, conditioners."""

import numpy as np
import pytest

from repro.lapack77 import (hecon, herfs, hesv, hetrf, hetrs, lanhe, lansy,
                            sycon, syrfs, sysv, sytf2, sytrf, sytrs)

from ..conftest import rand_matrix, rand_vector, tol_for

UPLOS = ["U", "L"]


def sym_indef(rng, n, dtype, hermitian):
    """Random indefinite symmetric/Hermitian matrix (mixed-sign spectrum)."""
    a = rand_matrix(rng, n, n, dtype)
    m = a + (np.conj(a.T) if hermitian else a.T)
    # Shift alternating diagonal to force indefiniteness.
    d = np.arange(n) - n / 2.0
    m[np.diag_indices(n)] += d.astype(m.dtype)
    if hermitian:
        np.fill_diagonal(m, m.diagonal().real)
    return m


@pytest.mark.parametrize("uplo", UPLOS)
@pytest.mark.parametrize("n", [1, 2, 3, 10, 31])
def test_sysv_real(rng, real_dtype, uplo, n):
    a0 = sym_indef(rng, n, real_dtype, hermitian=False)
    x_true = rand_vector(rng, n, real_dtype)
    b = (a0 @ x_true).astype(real_dtype)
    a = a0.copy()
    ipiv, info = sysv(a, b, uplo)
    assert info == 0
    np.testing.assert_allclose(b, x_true, rtol=tol_for(real_dtype, 1e4),
                               atol=tol_for(real_dtype, 1e4))


@pytest.mark.parametrize("uplo", UPLOS)
@pytest.mark.parametrize("n", [1, 2, 3, 10, 31])
def test_sysv_complex_symmetric(rng, complex_dtype, uplo, n):
    a0 = sym_indef(rng, n, complex_dtype, hermitian=False)
    x_true = rand_vector(rng, n, complex_dtype)
    b = (a0 @ x_true).astype(complex_dtype)
    a = a0.copy()
    ipiv, info = sysv(a, b, uplo)
    assert info == 0
    np.testing.assert_allclose(b, x_true, rtol=tol_for(complex_dtype, 1e4),
                               atol=tol_for(complex_dtype, 1e4))


@pytest.mark.parametrize("uplo", UPLOS)
@pytest.mark.parametrize("n", [1, 2, 3, 10, 31])
def test_hesv_hermitian(rng, complex_dtype, uplo, n):
    a0 = sym_indef(rng, n, complex_dtype, hermitian=True)
    x_true = rand_vector(rng, n, complex_dtype)
    b = (a0 @ x_true).astype(complex_dtype)
    a = a0.copy()
    ipiv, info = hesv(a, b, uplo)
    assert info == 0
    np.testing.assert_allclose(b, x_true, rtol=tol_for(complex_dtype, 1e4),
                               atol=tol_for(complex_dtype, 1e4))


@pytest.mark.parametrize("uplo", UPLOS)
def test_sysv_forces_2x2_pivots(rng, uplo):
    # Zero diagonal ⇒ 1x1 pivots are impossible at the start; 2x2 blocks
    # must appear (encoded as negative ipiv pairs).
    n = 8
    a0 = np.zeros((n, n))
    rng2 = np.random.default_rng(3)
    off = rng2.uniform(1, 2, (n, n))
    a0 = np.triu(off, 1)
    a0 = a0 + a0.T
    x_true = rng2.standard_normal(n)
    b = a0 @ x_true
    a = a0.copy()
    ipiv, info = sysv(a, b, uplo)
    assert info == 0
    assert np.any(ipiv < 0), "expected at least one 2x2 pivot block"
    np.testing.assert_allclose(b, x_true, rtol=1e-10, atol=1e-10)


def test_sytf2_singular_info():
    a = np.zeros((4, 4))
    ipiv, info = sytf2(a, "U")
    assert info > 0


@pytest.mark.parametrize("uplo", UPLOS)
def test_sysv_multiple_rhs(rng, uplo):
    n, nrhs = 20, 4
    a0 = sym_indef(rng, n, np.float64, hermitian=False)
    x_true = rand_matrix(rng, n, nrhs, np.float64)
    b = a0 @ x_true
    a = a0.copy()
    ipiv, info = sysv(a, b, uplo)
    assert info == 0
    np.testing.assert_allclose(b, x_true, rtol=1e-8, atol=1e-8)


@pytest.mark.parametrize("uplo", UPLOS)
def test_sycon_estimate(rng, uplo):
    n = 30
    a0 = sym_indef(rng, n, np.float64, hermitian=False)
    anorm = lansy("1", a0, uplo)
    af = a0.copy()
    ipiv, _ = sytrf(af, uplo)
    rcond, info = sycon(af, ipiv, anorm, uplo)
    true_rcond = 1.0 / np.linalg.cond(a0, 1)
    assert true_rcond / 20 <= rcond <= true_rcond * 20


@pytest.mark.parametrize("uplo", UPLOS)
def test_hecon_estimate(rng, uplo):
    n = 25
    a0 = sym_indef(rng, n, np.complex128, hermitian=True)
    anorm = lanhe("1", a0, uplo)
    af = a0.copy()
    ipiv, _ = hetrf(af, uplo)
    rcond, info = hecon(af, ipiv, anorm, uplo)
    true_rcond = 1.0 / np.linalg.cond(a0, 1)
    assert true_rcond / 20 <= rcond <= true_rcond * 20


def test_syrfs_refines(rng):
    n = 40
    a0 = sym_indef(rng, n, np.float64, hermitian=False)
    x_true = rand_vector(rng, n, np.float64)
    b = a0 @ x_true
    af = a0.copy()
    ipiv, _ = sytrf(af, "U")
    x = b.copy()
    sytrs(af, ipiv, x, "U")
    x += 1e-8
    ferr, berr, info = syrfs(a0, af, ipiv, b, x, "U")
    assert info == 0
    assert np.all(berr < 1e-12)


def test_herfs_refines(rng):
    n = 30
    a0 = sym_indef(rng, n, np.complex128, hermitian=True)
    x_true = rand_vector(rng, n, np.complex128)
    b = a0 @ x_true
    af = a0.copy()
    ipiv, _ = hetrf(af, "U")
    x = b.copy()
    hetrs(af, ipiv, x, "U")
    x += 1e-8
    ferr, berr, info = herfs(a0, af, ipiv, b, x, "U")
    assert info == 0
    assert np.all(berr < 1e-12)


@pytest.mark.parametrize("uplo", UPLOS)
@pytest.mark.parametrize("trial", range(5))
def test_sysv_random_trials(uplo, trial):
    rng = np.random.default_rng(100 + trial)
    n = int(rng.integers(2, 40))
    a = rng.standard_normal((n, n))
    a = a + a.T
    x_true = rng.standard_normal(n)
    b = a @ x_true
    af = a.copy()
    ipiv, info = sysv(af, b, uplo)
    assert info == 0
    np.testing.assert_allclose(b, x_true, rtol=1e-7, atol=1e-7)
