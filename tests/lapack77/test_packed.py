"""Packed-storage solver families."""

import numpy as np
import pytest

from repro.lapack77 import (hpsv, hptrf, hptrs, ppcon, ppequ, pprfs, ppsv,
                            pptrf, pptrs, spcon, spsv, sptrf, sptrs)
from repro.storage import pack, unpack

from ..conftest import rand_matrix, rand_vector, spd_matrix, tol_for

UPLOS = ["U", "L"]


def indef(rng, n, dtype, hermitian):
    a = rand_matrix(rng, n, n, dtype)
    m = a + (np.conj(a.T) if hermitian else a.T)
    m[np.diag_indices(n)] += (np.arange(n) - n / 2.0).astype(m.dtype)
    if hermitian:
        np.fill_diagonal(m, m.diagonal().real)
    return m


@pytest.mark.parametrize("uplo", UPLOS)
def test_pptrf_matches_dense_cholesky(rng, dtype, uplo):
    n = 12
    a = spd_matrix(rng, n, dtype)
    ap = pack(a, uplo=uplo)
    info = pptrf(ap, uplo)
    assert info == 0
    factor = unpack(ap, n, uplo=uplo)
    if uplo == "U":
        rec = np.conj(factor.T) @ factor
    else:
        rec = factor @ np.conj(factor.T)
    np.testing.assert_allclose(rec, a, rtol=tol_for(dtype, 1e3),
                               atol=tol_for(dtype, 1e3) * np.abs(a).max())


@pytest.mark.parametrize("uplo", UPLOS)
def test_ppsv_solves(rng, dtype, uplo):
    n, nrhs = 18, 2
    a = spd_matrix(rng, n, dtype)
    ap = pack(a, uplo=uplo)
    x_true = rand_matrix(rng, n, nrhs, dtype)
    b = (a @ x_true).astype(dtype)
    info = ppsv(ap, b, uplo)
    assert info == 0
    np.testing.assert_allclose(b, x_true, rtol=tol_for(dtype, 1e4),
                               atol=tol_for(dtype, 1e4))


def test_pptrf_not_pd():
    a = np.eye(4)
    a[1, 1] = -1.0
    ap = pack(a, uplo="U")
    info = pptrf(ap, "U")
    assert info == 2


def test_ppcon_estimate(rng):
    n = 25
    a = spd_matrix(rng, n, np.float64)
    anorm = np.linalg.norm(a, 1)
    ap = pack(a, uplo="U")
    pptrf(ap, "U")
    rcond, info = ppcon(ap, anorm, "U")
    true_rcond = 1.0 / np.linalg.cond(a, 1)
    assert true_rcond / 10 <= rcond <= true_rcond * 10


def test_pprfs_refines(rng):
    n = 20
    a = spd_matrix(rng, n, np.float64)
    ap_orig = pack(a, uplo="U")
    afp = ap_orig.copy()
    pptrf(afp, "U")
    x_true = rand_vector(rng, n, np.float64)
    b = a @ x_true
    x = b.copy()
    pptrs(afp, x, "U")
    x += 1e-8
    ferr, berr, info = pprfs(ap_orig, afp, b, x, "U")
    assert info == 0
    assert np.all(berr < 1e-12)


def test_ppequ(rng):
    n = 10
    a = spd_matrix(rng, n, np.float64)
    a[0, 0] *= 1e9
    ap = pack(a, uplo="U")
    s, scond, amax, info = ppequ(ap, n, "U")
    assert info == 0
    np.testing.assert_allclose(s * a.diagonal() * s, 1.0, rtol=1e-12)


@pytest.mark.parametrize("uplo", UPLOS)
def test_spsv_real(rng, real_dtype, uplo):
    n = 15
    a = indef(rng, n, real_dtype, hermitian=False)
    ap = pack(a, uplo=uplo)
    x_true = rand_vector(rng, n, real_dtype)
    b = (a @ x_true).astype(real_dtype)
    ipiv, info = spsv(ap, b, uplo)
    assert info == 0
    np.testing.assert_allclose(b, x_true, rtol=tol_for(real_dtype, 1e4),
                               atol=tol_for(real_dtype, 1e4))


@pytest.mark.parametrize("uplo", UPLOS)
def test_spsv_complex_symmetric(rng, uplo):
    n = 12
    a = indef(rng, n, np.complex128, hermitian=False)
    ap = pack(a, uplo=uplo)
    x_true = rand_vector(rng, n, np.complex128)
    b = a @ x_true
    ipiv, info = spsv(ap, b, uplo)
    assert info == 0
    np.testing.assert_allclose(b, x_true, rtol=1e-8, atol=1e-8)


@pytest.mark.parametrize("uplo", UPLOS)
def test_hpsv_hermitian(rng, complex_dtype, uplo):
    n = 14
    a = indef(rng, n, complex_dtype, hermitian=True)
    ap = pack(a, uplo=uplo)
    x_true = rand_vector(rng, n, complex_dtype)
    b = (a @ x_true).astype(complex_dtype)
    ipiv, info = hpsv(ap, b, uplo)
    assert info == 0
    np.testing.assert_allclose(b, x_true, rtol=tol_for(complex_dtype, 1e4),
                               atol=tol_for(complex_dtype, 1e4))


def test_sptrf_then_sptrs_factor_reuse(rng):
    n = 10
    a = indef(rng, n, np.float64, hermitian=False)
    ap = pack(a, uplo="U")
    ipiv, info = sptrf(ap, "U")
    assert info == 0
    x_true = rand_vector(rng, n, np.float64)
    b = a @ x_true
    sptrs(ap, ipiv, b, "U")
    np.testing.assert_allclose(b, x_true, rtol=1e-9, atol=1e-9)


def test_spcon_estimate(rng):
    n = 20
    a = indef(rng, n, np.float64, hermitian=False)
    anorm = np.linalg.norm(a, 1)
    ap = pack(a, uplo="U")
    ipiv, _ = sptrf(ap, "U")
    rcond, info = spcon(ap, ipiv, anorm, "U")
    true_rcond = 1.0 / np.linalg.cond(a, 1)
    assert true_rcond / 20 <= rcond <= true_rcond * 20
