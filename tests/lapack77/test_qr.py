"""QR/LQ factorizations: reconstruction, orthogonality, application."""

import numpy as np
import pytest

from repro import config
from repro.lapack77 import (gelqf, geqr2, geqrf, orglq, orgqr, ormlq, ormqr)

from ..conftest import rand_matrix, tol_for


def q_from_qr(a_fact, tau, m):
    """Explicit m×m Q from packed reflectors."""
    q = np.zeros((m, m), dtype=a_fact.dtype)
    q[:, : a_fact.shape[1]] = a_fact
    return orgqr(q, tau)


@pytest.mark.parametrize("m,n", [(8, 8), (10, 6), (6, 10), (1, 1), (5, 1)])
def test_geqrf_reconstructs(rng, dtype, m, n):
    a0 = rand_matrix(rng, m, n, dtype)
    a = a0.copy()
    tau = geqrf(a)
    r = np.triu(a[: min(m, n), :])
    q = np.zeros((m, min(m, n)), dtype=dtype)
    q[:, :] = np.tril(a[:, : min(m, n)], -1)
    qq = orgqr(q.copy(), tau)
    np.testing.assert_allclose(qq @ r[: min(m, n)], a0,
                               rtol=tol_for(dtype, 100),
                               atol=tol_for(dtype, 100))


def test_geqrf_blocked_matches_unblocked(rng, dtype):
    m, n = 90, 70
    a0 = rand_matrix(rng, m, n, dtype)
    a1, a2 = a0.copy(), a0.copy()
    with config.block_size_override("geqrf", 16):
        tau1 = geqrf(a1)
    tau2 = geqr2(a2)
    np.testing.assert_allclose(a1, a2, rtol=tol_for(dtype, 1000),
                               atol=tol_for(dtype, 1000))
    np.testing.assert_allclose(tau1, tau2, rtol=tol_for(dtype, 1000),
                               atol=tol_for(dtype, 1000))


def test_orgqr_orthonormal(rng, dtype):
    m, n = 12, 7
    a = rand_matrix(rng, m, n, dtype)
    tau = geqrf(a)
    q = orgqr(a.copy(), tau)
    np.testing.assert_allclose(np.conj(q.T) @ q, np.eye(n), rtol=0,
                               atol=tol_for(dtype, 100))


def test_orgqr_extra_columns(rng):
    # Generate a full m×m Q from k < m reflectors.
    m, k = 9, 4
    a0 = rand_matrix(rng, m, k, np.float64)
    a = a0.copy()
    tau = geqrf(a)
    qfull = np.zeros((m, m))
    qfull[:, :k] = np.tril(a, -1)[:, :k]
    qfull = orgqr(qfull, tau)
    np.testing.assert_allclose(qfull.T @ qfull, np.eye(m), atol=1e-12)
    # First k columns reproduce A's column space: Q R = A.
    r = np.triu(a[:k, :])
    np.testing.assert_allclose(qfull[:, :k] @ r, a0, atol=1e-12)


@pytest.mark.parametrize("side", ["L", "R"])
@pytest.mark.parametrize("trans", ["N", "C"])
def test_ormqr_matches_explicit(rng, dtype, side, trans):
    m, n = 10, 6
    a = rand_matrix(rng, m, min(m, n), dtype)
    tau = geqrf(a)
    q = np.zeros((m, m), dtype=dtype)
    q[:, : a.shape[1]] = np.tril(a, -1)
    q = orgqr(q, np.concatenate([tau, np.zeros(0, dtype=dtype)]))
    op = q if trans == "N" else np.conj(q.T)
    if side == "L":
        c = rand_matrix(rng, m, 4, dtype)
        expect = op @ c
    else:
        c = rand_matrix(rng, 4, m, dtype)
        expect = c @ op
    got = c.copy()
    ormqr(side, trans, a, tau, got)
    np.testing.assert_allclose(got, expect, rtol=tol_for(dtype, 200),
                               atol=tol_for(dtype, 200))


@pytest.mark.parametrize("m,n", [(6, 9), (5, 5), (1, 4)])
def test_gelqf_reconstructs(rng, dtype, m, n):
    a0 = rand_matrix(rng, m, n, dtype)
    a = a0.copy()
    tau = gelqf(a)
    k = min(m, n)
    l = np.tril(a[:, :k])
    q = a[:k, :].copy()
    q = orglq(q, tau)
    np.testing.assert_allclose(l @ q, a0, rtol=tol_for(dtype, 100),
                               atol=tol_for(dtype, 100))


def test_orglq_orthonormal_rows(rng, dtype):
    m, n = 5, 11
    a = rand_matrix(rng, m, n, dtype)
    tau = gelqf(a)
    q = orglq(a.copy(), tau)
    np.testing.assert_allclose(q @ np.conj(q.T), np.eye(m), rtol=0,
                               atol=tol_for(dtype, 100))


@pytest.mark.parametrize("side", ["L", "R"])
@pytest.mark.parametrize("trans", ["N", "C"])
def test_ormlq_matches_explicit(rng, dtype, side, trans):
    m, n = 5, 9
    a = rand_matrix(rng, m, n, dtype)
    tau = gelqf(a)
    qfull = np.zeros((n, n), dtype=dtype)
    qfull[:m, :] = a
    # Build the full n×n Q by extending with unit rows.
    q = orglq(qfull, tau)
    op = q if trans == "N" else np.conj(q.T)
    if side == "L":
        c = rand_matrix(rng, n, 3, dtype)
        expect = op @ c
    else:
        c = rand_matrix(rng, 3, n, dtype)
        expect = c @ op
    got = c.copy()
    ormlq(side, trans, a, tau, got)
    np.testing.assert_allclose(got, expect, rtol=tol_for(dtype, 200),
                               atol=tol_for(dtype, 200))


def test_qr_solve_least_squares_normal_path(rng):
    # Sanity: min ||Ax-b|| via QR equals the numpy lstsq answer.
    m, n = 20, 8
    a0 = rand_matrix(rng, m, n, np.float64)
    b = rand_matrix(rng, m, 1, np.float64)
    a = a0.copy()
    tau = geqrf(a)
    c = b.copy()
    ormqr("L", "C", a, tau, c)
    from repro.blas.level3 import trsm
    x = c[:n]
    trsm(1, a[:n, :n], x, side="L", uplo="U", transa="N", diag="N")
    ref = np.linalg.lstsq(a0, b, rcond=None)[0]
    np.testing.assert_allclose(x, ref, rtol=1e-9, atol=1e-9)
