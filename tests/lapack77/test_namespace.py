"""The substrate's public namespace: an explicit, non-leaking
catalogue (a ``dir()``-derived ``__all__`` used to leak the submodule
names ``lu``, ``chol``, … into the API and, transitively, into the
backend registry's reference table)."""

import types

from repro import lapack77
from repro.backends import get_backend


def test_all_is_explicit_and_resolvable():
    assert len(lapack77.__all__) == len(set(lapack77.__all__))
    for name in lapack77.__all__:
        obj = getattr(lapack77, name)
        assert callable(obj), name


def test_all_leaks_no_submodules():
    for name in lapack77.__all__:
        assert not isinstance(getattr(lapack77, name),
                              types.ModuleType), name
    submodules = {name for name in dir(lapack77)
                  if isinstance(getattr(lapack77, name), types.ModuleType)}
    assert submodules.isdisjoint(lapack77.__all__)
    # the leak the explicit list fixed: these are importable modules
    # that a dir()-computed __all__ would have exported
    assert {"lu", "chol", "svd"} <= submodules


def test_reference_backend_serves_exactly_the_catalogue():
    # the batched seam grafts one derived <routine>_stack entry per
    # batchable solver onto every backend; each must shadow a routine
    # the catalogue itself exports, and nothing else may be added
    from repro.backends.batched import STACK_ROUTINES
    assert set(STACK_ROUTINES) <= set(lapack77.__all__)
    stacked = {r + "_stack" for r in STACK_ROUTINES}
    ref = get_backend("reference")
    assert ref.routines() == frozenset(lapack77.__all__) | stacked
