"""Cholesky family vs scipy oracles and factorization identities."""

import numpy as np
import pytest
sla = pytest.importorskip("scipy.linalg")

from repro import config
from repro.lapack77 import (lansy, lanhe, pocon, poequ, porfs, posv, potf2,
                            potrf, potrs, laqsy)

from ..conftest import rand_matrix, spd_matrix, tol_for

UPLOS = ["U", "L"]


@pytest.mark.parametrize("uplo", UPLOS)
def test_potf2_reconstructs(rng, dtype, uplo):
    n = 12
    a0 = spd_matrix(rng, n, dtype)
    a = a0.copy()
    info = potf2(a, uplo)
    assert info == 0
    if uplo == "U":
        u = np.triu(a)
        rec = np.conj(u.T) @ u
    else:
        l = np.tril(a)
        rec = l @ np.conj(l.T)
    np.testing.assert_allclose(rec, a0, rtol=tol_for(dtype, 100),
                               atol=tol_for(dtype, 100))


@pytest.mark.parametrize("uplo", UPLOS)
def test_potrf_blocked_matches_scipy(rng, uplo):
    n = 150
    a0 = spd_matrix(rng, n, np.float64)
    a = a0.copy()
    with config.block_size_override("potrf", 32):
        info = potrf(a, uplo)
    assert info == 0
    ref = sla.cholesky(a0, lower=(uplo == "L"))
    factor = np.triu(a) if uplo == "U" else np.tril(a)
    np.testing.assert_allclose(factor, ref, rtol=1e-9, atol=1e-9)


@pytest.mark.parametrize("uplo", UPLOS)
def test_potrf_complex_blocked(rng, uplo):
    n = 120
    a0 = spd_matrix(rng, n, np.complex128)
    a = a0.copy()
    with config.block_size_override("potrf", 32):
        info = potrf(a, uplo)
    assert info == 0
    if uplo == "U":
        u = np.triu(a)
        rec = np.conj(u.T) @ u
    else:
        l = np.tril(a)
        rec = l @ np.conj(l.T)
    np.testing.assert_allclose(rec, a0, rtol=1e-9, atol=1e-8)


def test_potrf_not_pd_info():
    a = np.eye(4)
    a[2, 2] = -1.0
    info = potrf(a.copy(), "U")
    assert info == 3


@pytest.mark.parametrize("uplo", UPLOS)
def test_posv_solves(rng, dtype, uplo):
    n, nrhs = 30, 3
    a0 = spd_matrix(rng, n, dtype)
    x_true = rand_matrix(rng, n, nrhs, dtype)
    b = (a0 @ x_true).astype(dtype)
    a = a0.copy()
    info = posv(a, b, uplo)
    assert info == 0
    np.testing.assert_allclose(b, x_true, rtol=tol_for(dtype, 1e4),
                               atol=tol_for(dtype, 1e4))


def test_potrs_vector_rhs(rng):
    n = 15
    a0 = spd_matrix(rng, n, np.float64)
    x = np.ones(n)
    b = a0 @ x
    a = a0.copy()
    potrf(a, "U")
    potrs(a, b, "U")
    np.testing.assert_allclose(b, x, rtol=1e-9)


@pytest.mark.parametrize("uplo", UPLOS)
def test_pocon_tracks_condition(rng, uplo):
    n = 40
    a0 = spd_matrix(rng, n, np.float64)
    anorm = lansy("1", a0, uplo)
    a = a0.copy()
    potrf(a, uplo)
    rcond, info = pocon(a, anorm, uplo)
    assert info == 0
    true_rcond = 1.0 / np.linalg.cond(a0, 1)
    assert true_rcond / 10 <= rcond <= true_rcond * 10


def test_porfs_refines(rng):
    n, nrhs = 50, 2
    a0 = spd_matrix(rng, n, np.float64)
    x_true = rand_matrix(rng, n, nrhs, np.float64)
    b = a0 @ x_true
    af = a0.copy()
    potrf(af, "U")
    x = b.copy()
    potrs(af, x, "U")
    x += 1e-7 * rng.standard_normal(x.shape)
    ferr, berr, info = porfs(a0, af, b, x, "U")
    assert info == 0
    assert np.all(berr < 1e-13)
    err = np.max(np.abs(x - x_true), axis=0) / np.max(np.abs(x_true), axis=0)
    assert np.all(err <= ferr * 10 + 1e-15)


def test_poequ_scalings(rng):
    n = 10
    a = spd_matrix(rng, n, np.float64)
    a[0, 0] *= 1e8
    s, scond, amax, info = poequ(a)
    assert info == 0
    scaled_diag = s * a.diagonal() * s
    np.testing.assert_allclose(scaled_diag, 1.0, rtol=1e-12)
    assert scond < 0.1


def test_poequ_nonpositive_diagonal():
    a = np.eye(3)
    a[1, 1] = 0.0
    s, scond, amax, info = poequ(a)
    assert info == 2


@pytest.mark.parametrize("uplo", UPLOS)
def test_laqsy_scales_triangle(rng, uplo):
    n = 8
    a = spd_matrix(rng, n, np.float64)
    a[0, 0] *= 1e10
    s, scond, amax, info = poequ(a)
    a_scaled = a.copy()
    equed = laqsy(a_scaled, s, scond, amax, uplo)
    assert equed == "Y"
    d = a_scaled.diagonal()
    np.testing.assert_allclose(d, 1.0, rtol=1e-12)


def test_lanhe_matches_dense(rng):
    n = 9
    a = spd_matrix(rng, n, np.complex128)
    for norm in ["1", "I", "F", "M"]:
        got = lanhe(norm, np.triu(a), "U")
        ref = {"1": np.linalg.norm(a, 1), "I": np.linalg.norm(a, np.inf),
               "F": np.linalg.norm(a, "fro"), "M": np.abs(a).max()}[norm]
        np.testing.assert_allclose(got, ref, rtol=1e-12)
