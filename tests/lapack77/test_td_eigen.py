"""Tridiagonal eigen-machinery: reduction, QL iteration, bisection,
inverse iteration, divide and conquer."""

import numpy as np
import pytest

from repro.lapack77.td_eigen import (hetrd, laev2, orgtr, stebz, stedc,
                                     stein, steqr, sterf, sytrd)

from ..conftest import rand_matrix, tol_for

UPLOS = ["U", "L"]


def sym(rng, n, dtype, hermitian=False):
    a = rand_matrix(rng, n, n, dtype)
    m = a + (np.conj(a.T) if hermitian else a.T)
    if hermitian:
        np.fill_diagonal(m, m.diagonal().real)
    return m


def tridiag(d, e):
    n = len(d)
    t = np.diag(d.astype(np.float64))
    if n > 1:
        t += np.diag(e, 1) + np.diag(e, -1)
    return t


@pytest.mark.parametrize("uplo", UPLOS)
def test_sytrd_similarity(rng, real_dtype, uplo):
    n = 12
    a0 = sym(rng, n, real_dtype)
    a = a0.copy()
    d, e, tau = sytrd(a, uplo)
    q = a.copy()
    orgtr(q, tau, uplo)
    t = np.conj(q.T) @ a0 @ q
    np.testing.assert_allclose(t, tridiag(d, e), rtol=0,
                               atol=tol_for(real_dtype, 300) * max(
                                   1, np.abs(a0).max()))


@pytest.mark.parametrize("uplo", UPLOS)
def test_hetrd_similarity(rng, complex_dtype, uplo):
    n = 10
    a0 = sym(rng, n, complex_dtype, hermitian=True)
    a = a0.copy()
    d, e, tau = hetrd(a, uplo)
    assert d.dtype.kind == "f" and e.dtype.kind == "f"
    q = a.copy()
    orgtr(q, tau, uplo)
    t = np.conj(q.T) @ a0 @ q
    np.testing.assert_allclose(t, tridiag(d, e), rtol=0,
                               atol=tol_for(complex_dtype, 300) * max(
                                   1, np.abs(a0).max()))
    # Q unitary.
    np.testing.assert_allclose(np.conj(q.T) @ q, np.eye(n), rtol=0,
                               atol=tol_for(complex_dtype, 100))


def test_steqr_eigenvalues_match_numpy(rng):
    n = 40
    d = rng.standard_normal(n)
    e = rng.standard_normal(n - 1)
    ref = np.linalg.eigvalsh(tridiag(d, e))
    dd, ee = d.copy(), e.copy()
    info = steqr(dd, ee, compz="N")
    assert info == 0
    np.testing.assert_allclose(np.sort(dd), np.sort(ref), rtol=1e-10,
                               atol=1e-10)


def test_steqr_eigenvectors(rng):
    n = 25
    d = rng.standard_normal(n)
    e = rng.standard_normal(n - 1)
    t = tridiag(d, e)
    dd, ee = d.copy(), e.copy()
    z = np.empty((n, n))
    info = steqr(dd, ee, z, compz="I")
    assert info == 0
    # T z_i = w_i z_i, orthonormal z.
    np.testing.assert_allclose(t @ z, z * dd[None, :], atol=1e-9)
    np.testing.assert_allclose(z.T @ z, np.eye(n), atol=1e-10)
    assert np.all(np.diff(dd) >= -1e-12)


def test_steqr_accumulate_mode(rng):
    # compz='V': start from the sytrd Q, end with eigenvectors of A.
    n = 15
    a0 = sym(rng, n, np.float64)
    a = a0.copy()
    d, e, tau = sytrd(a, "L")
    q = a.copy()
    orgtr(q, tau, "L")
    info = steqr(d, e, q, compz="V")
    assert info == 0
    np.testing.assert_allclose(a0 @ q, q * d[None, :], atol=1e-9)


def test_sterf_matches_steqr(rng):
    n = 30
    d = rng.standard_normal(n)
    e = rng.standard_normal(n - 1)
    d1, e1 = d.copy(), e.copy()
    d2, e2 = d.copy(), e.copy()
    sterf(d1, e1)
    steqr(d2, e2, compz="N")
    np.testing.assert_allclose(d1, d2, rtol=1e-12, atol=1e-12)


def test_laev2_agrees_with_numpy():
    for a, b, c in [(2.0, 1.0, -1.0), (0.0, 3.0, 0.0), (5.0, 0.0, 2.0),
                    (-1.0, 1e-8, -1.0)]:
        rt1, rt2, cs1, sn1 = laev2(a, b, c)
        ref = np.linalg.eigvalsh(np.array([[a, b], [b, c]]))
        np.testing.assert_allclose(sorted([rt1, rt2]), ref, atol=1e-12)
        # Eigenvector check for rt1.
        v = np.array([cs1, sn1])
        m = np.array([[a, b], [b, c]])
        np.testing.assert_allclose(m @ v, rt1 * v, atol=1e-8)


def test_stebz_all(rng):
    n = 30
    d = rng.standard_normal(n)
    e = rng.standard_normal(n - 1)
    ref = np.linalg.eigvalsh(tridiag(d, e))
    w, m, info = stebz(d, e)
    assert info == 0 and m == n
    np.testing.assert_allclose(w, ref, atol=1e-8)


def test_stebz_index_range(rng):
    n = 20
    d = rng.standard_normal(n)
    e = rng.standard_normal(n - 1)
    ref = np.linalg.eigvalsh(tridiag(d, e))
    w, m, info = stebz(d, e, il=3, iu=7)
    assert m == 5
    np.testing.assert_allclose(w, ref[3:8], atol=1e-8)


def test_stebz_value_range(rng):
    n = 20
    d = rng.standard_normal(n)
    e = rng.standard_normal(n - 1)
    ref = np.linalg.eigvalsh(tridiag(d, e))
    vl, vu = -0.5, 1.0
    w, m, info = stebz(d, e, vl=vl, vu=vu)
    expect = ref[(ref > vl) & (ref <= vu)]
    assert m == len(expect)
    np.testing.assert_allclose(w, expect, atol=1e-8)


def test_stein_vectors(rng):
    n = 25
    d = rng.standard_normal(n)
    e = rng.standard_normal(n - 1)
    t = tridiag(d, e)
    w, m, _ = stebz(d, e, il=0, iu=4)
    z, fail = stein(d, e, w)
    assert fail == 0
    for j in range(m):
        resid = np.linalg.norm(t @ z[:, j] - w[j] * z[:, j])
        assert resid < 1e-7
    # Orthonormality.
    np.testing.assert_allclose(z.T @ z, np.eye(m), atol=1e-7)


@pytest.mark.parametrize("n", [5, 33, 80, 150])
def test_stedc_matches_numpy(n):
    rng = np.random.default_rng(42 + n)
    d = rng.standard_normal(n)
    e = rng.standard_normal(n - 1)
    t = tridiag(d, e)
    ref = np.linalg.eigvalsh(t)
    dd, ee = d.copy(), e.copy()
    z = np.empty((n, n))
    info = stedc(dd, ee, z, compz="I")
    assert info == 0
    np.testing.assert_allclose(dd, ref, atol=1e-8 * max(1, np.abs(t).max()))
    # Eigenpairs + orthogonality (the Gu–Eisenstat part).
    np.testing.assert_allclose(t @ z, z * dd[None, :], atol=1e-7)
    np.testing.assert_allclose(z.T @ z, np.eye(n), atol=1e-8)


def test_stedc_clustered_eigenvalues():
    # Near-multiple eigenvalues stress deflation + orthogonality.
    n = 64
    rng = np.random.default_rng(7)
    d = np.repeat([1.0, 2.0, 3.0, 4.0], n // 4) + 1e-12 * rng.standard_normal(n)
    e = 1e-10 * np.abs(rng.standard_normal(n - 1)) + 1e-13
    t = tridiag(d, e)
    ref = np.linalg.eigvalsh(t)
    dd, ee = d.copy(), e.copy()
    z = np.empty((n, n))
    info = stedc(dd, ee, z, compz="I")
    assert info == 0
    np.testing.assert_allclose(dd, ref, atol=1e-9)
    np.testing.assert_allclose(z.T @ z, np.eye(n), atol=1e-8)


def test_stedc_eigenvalues_only(rng):
    n = 50
    d = rng.standard_normal(n)
    e = rng.standard_normal(n - 1)
    ref = np.linalg.eigvalsh(tridiag(d, e))
    dd, ee = d.copy(), e.copy()
    info = stedc(dd, ee, compz="N")
    assert info == 0
    np.testing.assert_allclose(np.sort(dd), ref, atol=1e-9)
