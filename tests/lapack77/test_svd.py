"""SVD chain: bidiagonalization, QR iteration, full driver, and GELSS."""

import numpy as np
import pytest

from repro.lapack77.svd import bdsqr, gebrd, gesvd, orgbr
from repro.lapack77.lls import gels, gelss, gelsx

from ..conftest import rand_matrix, tol_for


def bidiag(d, e):
    n = len(d)
    b = np.diag(d.astype(np.float64))
    if n > 1:
        b += np.diag(e, 1)
    return b


@pytest.mark.parametrize("m,n", [(8, 8), (12, 7), (7, 7), (1, 1), (5, 2)])
def test_gebrd_reduces(rng, dtype, m, n):
    a0 = rand_matrix(rng, m, n, dtype)
    a = a0.copy()
    d, e, tauq, taup = gebrd(a)
    q = orgbr("Q", a, tauq, taup, ncols=m)
    vt = orgbr("P", a, tauq, taup)
    b = np.conj(q.T) @ a0 @ np.conj(vt.T)
    expect = np.zeros((m, n))
    expect[:n, :n] = bidiag(d, e)
    np.testing.assert_allclose(b, expect, rtol=0,
                               atol=tol_for(dtype, 500) * max(
                                   1, np.abs(a0).max()))
    # Q, P unitary.
    np.testing.assert_allclose(np.conj(q.T) @ q, np.eye(m), atol=tol_for(
        dtype, 200))
    np.testing.assert_allclose(vt @ np.conj(vt.T), np.eye(n), atol=tol_for(
        dtype, 200))


def test_bdsqr_values_match_numpy(rng):
    n = 30
    d = rng.standard_normal(n)
    e = rng.standard_normal(n - 1)
    b = bidiag(d, e)
    ref = np.linalg.svd(b, compute_uv=False)
    dd = d.copy()
    ee = e.copy()
    info = bdsqr(dd, ee)
    assert info == 0
    np.testing.assert_allclose(dd, ref, atol=1e-10)


def test_bdsqr_with_vectors(rng):
    n = 20
    d = rng.standard_normal(n)
    e = rng.standard_normal(n - 1)
    b = bidiag(d, e)
    u = np.eye(n)
    vt = np.eye(n)
    dd, ee = d.copy(), e.copy()
    info = bdsqr(dd, ee, vt=vt, u=u)
    assert info == 0
    np.testing.assert_allclose(u @ np.diag(dd) @ vt, b, atol=1e-9)
    np.testing.assert_allclose(u.T @ u, np.eye(n), atol=1e-10)
    np.testing.assert_allclose(vt @ vt.T, np.eye(n), atol=1e-10)


@pytest.mark.parametrize("m,n", [(10, 6), (6, 10), (8, 8), (1, 3), (20, 3)])
def test_gesvd_reconstructs(rng, dtype, m, n):
    a0 = rand_matrix(rng, m, n, dtype)
    s, u, vt, info = gesvd(a0.copy(), jobu="S", jobvt="S")
    assert info == 0
    k = min(m, n)
    assert np.all(np.diff(s) <= 1e-12)  # descending
    assert np.all(s >= 0)
    rec = (u * s[None, :].astype(u.dtype)) @ vt
    np.testing.assert_allclose(rec, a0, rtol=0,
                               atol=tol_for(dtype, 1000) * max(
                                   1, np.abs(a0).max()))
    ref = np.linalg.svd(a0.astype(np.complex128 if np.dtype(dtype).kind ==
                                  "c" else np.float64), compute_uv=False)
    np.testing.assert_allclose(s, ref, atol=tol_for(dtype, 300))


def test_gesvd_full_matrices(rng, dtype):
    m, n = 9, 5
    a0 = rand_matrix(rng, m, n, dtype)
    s, u, vt, info = gesvd(a0.copy(), jobu="A", jobvt="A")
    assert info == 0
    assert u.shape == (m, m) and vt.shape == (n, n)
    np.testing.assert_allclose(np.conj(u.T) @ u, np.eye(m),
                               atol=tol_for(dtype, 300))
    sig = np.zeros((m, n))
    sig[:n, :n] = np.diag(s)
    np.testing.assert_allclose(u @ sig.astype(u.dtype) @ vt, a0,
                               atol=tol_for(dtype, 1000) * max(
                                   1, np.abs(a0).max()))


def test_gesvd_values_only(rng):
    a = rand_matrix(rng, 15, 10, np.float64)
    s, u, vt, info = gesvd(a.copy(), jobu="N", jobvt="N")
    assert u is None and vt is None and info == 0
    np.testing.assert_allclose(s, np.linalg.svd(a, compute_uv=False),
                               atol=1e-10)


def test_gesvd_rank_deficient(rng):
    a = rand_matrix(rng, 10, 4, np.float64)
    a[:, 3] = a[:, 0] + a[:, 1]  # rank 3
    s, u, vt, info = gesvd(a.copy(), jobu="S", jobvt="S")
    assert info == 0
    assert s[3] < 1e-12 * s[0]


# -- least squares drivers over the SVD/QR machinery ------------------------

@pytest.mark.parametrize("trans", ["N", "T"])
@pytest.mark.parametrize("m,n", [(12, 5), (5, 12)])
def test_gels(rng, dtype, trans, m, n):
    if trans == "T" and np.dtype(dtype).kind == "c":
        trans_eff = "C"
    else:
        trans_eff = trans
    a0 = rand_matrix(rng, m, n, dtype)
    op = a0 if trans == "N" else np.conj(a0.T) if trans_eff == "C" else a0.T
    rows, cols = op.shape
    x_true = rand_matrix(rng, cols, 2, dtype)
    b_data = (op @ x_true).astype(dtype)
    b = np.zeros((max(m, n), 2), dtype=dtype)
    b[:rows] = b_data
    a = a0.copy()
    info = gels(a, b, trans=trans_eff)
    assert info == 0
    ref = np.linalg.lstsq(op.astype(np.complex128 if np.dtype(dtype).kind
                                    == "c" else np.float64),
                          b_data.astype(np.complex128 if np.dtype(dtype).kind
                                        == "c" else np.float64),
                          rcond=None)[0]
    np.testing.assert_allclose(b[:cols], ref, rtol=0,
                               atol=tol_for(dtype, 2e4))


def test_gels_overdetermined_residual(rng):
    m, n = 20, 4
    a0 = rand_matrix(rng, m, n, np.float64)
    b0 = rand_matrix(rng, m, 1, np.float64)
    a, b = a0.copy(), b0.copy()
    gels(a, b)
    ref = np.linalg.lstsq(a0, b0, rcond=None)[0]
    np.testing.assert_allclose(b[:n], ref, atol=1e-10)
    # Rows n..m-1 hold residual components: their norm² = min residual².
    resid = np.linalg.norm(a0 @ ref - b0)
    np.testing.assert_allclose(np.linalg.norm(b[n:]), resid, rtol=1e-8)


def test_gels_underdetermined_min_norm(rng):
    m, n = 4, 10
    a0 = rand_matrix(rng, m, n, np.float64)
    b0 = rand_matrix(rng, m, 1, np.float64)
    a = a0.copy()
    b = np.zeros((n, 1))
    b[:m] = b0
    gels(a, b)
    ref = np.linalg.lstsq(a0, b0, rcond=None)[0]  # pinv = min-norm
    np.testing.assert_allclose(b, ref, atol=1e-10)


@pytest.mark.parametrize("m,n", [(12, 6), (6, 12), (10, 10)])
def test_gelss_full_rank(rng, dtype, m, n):
    a0 = rand_matrix(rng, m, n, dtype)
    b0 = rand_matrix(rng, m, 2, dtype)
    b = np.zeros((max(m, n), 2), dtype=dtype)
    b[:m] = b0
    a = a0.copy()
    s, rank, info = gelss(a, b)
    assert info == 0
    assert rank == min(m, n)
    ref = np.linalg.lstsq(a0.astype(np.complex128 if np.dtype(dtype).kind
                                    == "c" else np.float64),
                          b0.astype(np.complex128 if np.dtype(dtype).kind
                                    == "c" else np.float64), rcond=None)[0]
    np.testing.assert_allclose(b[:n], ref, atol=tol_for(dtype, 2e4))


def test_gelss_rank_deficient(rng):
    m, n = 15, 6
    a0 = rand_matrix(rng, m, n, np.float64)
    a0[:, 5] = a0[:, 0]  # rank 5
    b0 = rand_matrix(rng, m, 1, np.float64)
    b = np.zeros((m, 1))
    b[:m] = b0
    a = a0.copy()
    s, rank, info = gelss(a, b, rcond=1e-10)
    assert info == 0
    assert rank == 5
    ref = np.linalg.lstsq(a0, b0, rcond=1e-10)[0]
    np.testing.assert_allclose(b[:n], ref, atol=1e-8)


@pytest.mark.parametrize("m,n", [(12, 6), (10, 10)])
def test_gelsx_full_rank(rng, dtype, m, n):
    a0 = rand_matrix(rng, m, n, dtype)
    b0 = rand_matrix(rng, m, 2, dtype)
    b = np.zeros((max(m, n), 2), dtype=dtype)
    b[:m] = b0
    a = a0.copy()
    rank, jpvt, info = gelsx(a, b)
    assert info == 0
    assert rank == n
    ref = np.linalg.lstsq(a0.astype(np.complex128 if np.dtype(dtype).kind
                                    == "c" else np.float64),
                          b0.astype(np.complex128 if np.dtype(dtype).kind
                                    == "c" else np.float64), rcond=None)[0]
    np.testing.assert_allclose(b[:n], ref, atol=tol_for(dtype, 5e4))


def test_gelsx_rank_deficient_min_norm(rng):
    m, n = 12, 6
    a0 = rand_matrix(rng, m, n, np.float64)
    a0[:, 5] = 2 * a0[:, 1]  # rank 5
    b0 = rand_matrix(rng, m, 1, np.float64)
    b = np.zeros((m, 1))
    b[:m] = b0
    a = a0.copy()
    rank, jpvt, info = gelsx(a, b, rcond=1e-10)
    assert info == 0
    assert rank == 5
    ref = np.linalg.lstsq(a0, b0, rcond=None)[0]
    # Both are the minimum-norm LS solution.
    np.testing.assert_allclose(b[:n], ref, atol=1e-8)


@pytest.mark.parametrize("vect", ["Q", "P"])
@pytest.mark.parametrize("side", ["L", "R"])
@pytest.mark.parametrize("trans", ["N", "C"])
def test_ormbr_matches_explicit_factors(rng, dtype, vect, side, trans):
    from repro.lapack77.svd import ormbr, orgbr
    m, n = 8, 5
    a0 = rand_matrix(rng, m, n, dtype)
    a = a0.copy()
    d, e, tauq, taup = gebrd(a)
    q = orgbr("Q", a, tauq, taup, ncols=m)
    pt = orgbr("P", a, tauq, taup)
    stored = q if vect == "Q" else pt
    op = stored if trans == "N" else np.conj(stored.T)
    dim = stored.shape[0]
    if side == "L":
        c = rand_matrix(rng, dim, 3, dtype)
        expect = op @ c
    else:
        c = rand_matrix(rng, 3, dim, dtype)
        expect = c @ op
    got = c.copy()
    ormbr(vect, side, trans, a, tauq, taup, got)
    np.testing.assert_allclose(got, expect, rtol=tol_for(dtype, 200),
                               atol=tol_for(dtype, 200))
