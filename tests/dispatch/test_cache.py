"""The per-array structure cache: probe-once semantics, fingerprint
revalidation on mutation, FIFO bounding, and backend-switch
invalidation (the satellite-2 seam: a factor computed by the departed
substrate must never be reused)."""

import numpy as np
import pytest

from repro import (backends, invalidate_structure_cache, solve,
                   structure_cache_stats)
from repro.dispatch_front import cache
from repro.dispatch_front.probe import probe


@pytest.fixture(autouse=True)
def _fresh_cache():
    cache.clear()
    cache.reset_stats()
    yield
    cache.clear()


def _spd(n, seed=0):
    g = np.random.default_rng(seed).standard_normal((n, n))
    a = g @ g.T + n * np.eye(n)
    return (a + a.T) / 2


def test_repeat_solve_probes_once():
    a = _spd(6)
    b = a @ np.arange(1.0, 7.0)
    solve(a, b)
    solve(a, b)
    stats = structure_cache_stats()
    assert stats["misses"] == 1
    assert stats["hits"] == 1
    assert stats["entries"] == 1


def test_cache_hit_reports_zero_probe_cost():
    from repro.errors import Info
    a = _spd(5, seed=1)
    b = a @ np.ones(5)
    first, second = Info(), Info()
    solve(a, b, info=first)
    solve(a, b, info=second)
    assert first.probe_cost > 0.0
    assert second.probe_cost == 0.0
    assert first.structure == second.structure == "spd"


def test_mutation_is_detected_and_reclassified():
    a = _spd(4, seed=2)           # 16 elements: fully fingerprinted
    b = a @ np.ones(4)
    solve(a, b)
    assert structure_cache_stats()["entries"] == 1
    a[0, 1] += 1.0                # break symmetry in place
    st = cache.lookup(a)
    assert st is None             # fingerprint drift evicts the entry
    assert structure_cache_stats()["invalidated"] >= 1
    from repro.errors import Info
    info = Info()
    solve(a, a @ np.ones(4), info=info)
    assert info.chosen_driver == "la_gesv"


def test_store_is_fifo_bounded():
    keep = []                     # hold references so ids stay unique
    for k in range(cache.MAX_ENTRIES + 8):
        a = np.diag(np.full(2, float(k + 1)))
        keep.append(a)
        cache.store(a, probe(a))
    assert structure_cache_stats()["entries"] == cache.MAX_ENTRIES
    # The oldest entries were evicted, the newest survive.
    assert cache.lookup(keep[0]) is None
    assert cache.lookup(keep[-1]) is not None


def test_invalidate_one_array_and_all():
    a, b = _spd(3, seed=3), _spd(3, seed=4)
    cache.store(a, probe(a))
    cache.store(b, probe(b))
    assert invalidate_structure_cache(a) == 1
    assert structure_cache_stats()["entries"] == 1
    assert invalidate_structure_cache() == 1
    assert structure_cache_stats()["entries"] == 0


def test_backend_switch_clears_cache_and_bumps_epoch():
    names = backends.available_backends()
    if len(names) < 2:
        pytest.skip("only one backend registered")
    other = [n for n in names if n != backends.get_backend_name()][0]
    a = _spd(5, seed=5)
    cache.store(a, probe(a))
    epoch = structure_cache_stats()["epoch"]
    previous = backends.set_backend(other)
    try:
        stats = structure_cache_stats()
        assert stats["entries"] == 0
        assert stats["epoch"] == epoch + 1
    finally:
        backends.set_backend(previous)


def test_use_backend_round_trip_also_invalidates():
    names = backends.available_backends()
    if len(names) < 2:
        pytest.skip("only one backend registered")
    other = [n for n in names if n != backends.get_backend_name()][0]
    a = _spd(5, seed=6)
    cache.store(a, probe(a))
    epoch = structure_cache_stats()["epoch"]
    with backends.use_backend(other):
        assert structure_cache_stats()["entries"] == 0
    # Entry and restore are both effective switches: two epoch bumps,
    # and anything cached inside the block is dropped on the way out.
    assert structure_cache_stats()["epoch"] == epoch + 2
