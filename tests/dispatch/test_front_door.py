"""Front-door behavior beyond bit-identity: the explain plan, pinned
assumptions, stacked routing through the ``batch_*`` wrappers, the
non-mutation contract, and the Info/BatchInfo telemetry."""

import numpy as np
import pytest

from repro import (Explanation, batch, eig, la_posv, lstsq, solve)
from repro.batch import BatchInfo
from repro.dispatch_front import cache
from repro.errors import Info
from repro.specs.routing import route


@pytest.fixture(autouse=True)
def _fresh_cache():
    cache.clear()
    cache.reset_stats()
    yield
    cache.clear()


def _spd(n, seed=0):
    g = np.random.default_rng(seed).standard_normal((n, n))
    a = g @ g.T + n * np.eye(n)
    return (a + a.T) / 2


def _sym_indefinite(n, seed=0):
    g = np.random.default_rng(seed).standard_normal((n, n))
    a = g + g.T
    np.fill_diagonal(a, a.diagonal() - 5.0 * n)
    return a


def test_explain_returns_the_plan_without_executing():
    a = _spd(6)
    b = np.ones(6)
    plan = solve(a, b, explain=True)
    assert isinstance(plan, Explanation)
    assert plan.kind == "solve"
    assert plan.structure == "spd"
    assert plan.chosen_driver == "la_posv"
    # The refinement ladder, most specific first.
    assert plan.candidates == ("la_posv", "la_sysv", "la_gesv")
    assert plan.chosen_driver == route("solve", "spd", False).name
    assert not plan.batch
    assert plan.probe_cost > 0.0
    # explain classified (and cached) but never ran a driver: the
    # operands are untouched and a real solve now hits the cache.
    plan2 = solve(a, b, explain=True)
    assert plan2.cached and plan2.probe_cost == 0.0


def test_explain_matches_execution_choice():
    a = _sym_indefinite(7, seed=1)
    b = a @ np.ones(7)
    plan = solve(a, b, explain=True)
    info = Info()
    solve(a, b, info=info)
    assert plan.chosen_driver == info.chosen_driver == "la_sysv"


def test_assume_pins_the_route_and_skips_probing():
    a = _spd(5, seed=2)
    b = a @ np.ones(5)
    info = Info()
    x = solve(a, b, assume="spd", info=info)
    assert info.chosen_driver == "la_posv"
    assert info.probe_cost == 0.0
    assert cache.stats()["entries"] == 0      # assumption bypasses cache
    want = b.copy()
    la_posv(a.copy(), want, uplo="U")
    np.testing.assert_array_equal(x, want)


def test_wrong_assumption_fails_like_the_driver():
    a = _sym_indefinite(5, seed=3)
    b = a @ np.ones(5)
    winfo = Info()
    with np.errstate(invalid="ignore"):
        la_posv(a.copy(), b.copy(), info=winfo)
        info = Info()
        solve(a, b, assume="spd", info=info)
    assert int(winfo) > 0
    assert int(info) == int(winfo)


def test_assume_rejects_unknown_labels():
    with pytest.raises(ValueError, match="not a structure label"):
        solve(np.eye(2), np.ones(2), assume="sparse")


def test_solve_never_mutates_its_operands():
    a = _spd(6, seed=4)
    b = a @ np.arange(1.0, 7.0)
    a0, b0 = a.copy(), b.copy()
    solve(a, b)
    solve(a, b)                   # cached potrs path
    np.testing.assert_array_equal(a, a0)
    np.testing.assert_array_equal(b, b0)


def test_complex_matrix_real_rhs_promotes_a_fresh_copy():
    g = np.random.default_rng(5).standard_normal((4, 4))
    a = g + 1j * np.eye(4)
    a = a + a.conj().T
    b = np.ones(4)                # real: the driver could not overwrite
    x = solve(a, b)
    assert np.iscomplexobj(x)
    assert b.dtype == np.float64  # untouched


def test_stacked_spd_routes_to_batch_posv():
    a = np.stack([_spd(4, seed=s) for s in (6, 7, 8)])
    b = np.einsum("kij,j->ki", a, np.ones(4))
    plan = solve(a, b, explain=True)
    assert plan.batch
    assert plan.chosen_driver == "la_posv"
    binfo = BatchInfo()
    x = solve(a, b, info=binfo)
    want = batch.batch_posv(a.copy(), b.copy(), uplo="U")
    np.testing.assert_array_equal(x, want)
    assert binfo.first_failure == -1      # every problem succeeded
    assert binfo.structure == "spd"
    assert binfo.chosen_driver == "la_posv"


def test_stacked_general_routes_to_batch_gesv():
    rng = np.random.default_rng(9)
    a = rng.standard_normal((3, 5, 5)) + 5 * np.eye(5)
    b = np.einsum("kij,j->ki", a, np.ones(5))
    info = BatchInfo()
    x = solve(a, b, info=info)
    want = batch.batch_gesv(a.copy(), b.copy())
    np.testing.assert_array_equal(x, want)
    assert info.chosen_driver == "la_gesv"


def test_stacked_eig_symmetric_uses_batch_syev():
    rng = np.random.default_rng(10)
    g = rng.standard_normal((3, 4, 4))
    a = g + g.transpose(0, 2, 1) - 8 * np.eye(4)
    plan = eig(a, explain=True)
    assert plan.batch and plan.chosen_driver == "la_syev"
    w, v = eig(a, vectors=True)
    want = batch.batch_syev(a.copy(), jobz="V")
    np.testing.assert_array_equal(w, want)
    for k in range(3):
        resid = np.linalg.norm(a[k] @ v[k] - v[k] * w[k])
        assert resid < 1e-10 * max(1.0, np.abs(w[k]).max())


def test_stacked_eig_general_loops_with_batch_codes():
    rng = np.random.default_rng(11)
    a = rng.standard_normal((4, 3, 3))
    binfo = BatchInfo()
    w = eig(a, info=binfo)
    assert w.shape == (4, 3)
    assert np.iscomplexobj(w)
    assert binfo.codes() == (0, 0, 0, 0)
    assert binfo.first_failure == -1
    assert binfo.chosen_driver == "la_geev"


def test_lstsq_explain_names_the_qr_route():
    a = np.random.default_rng(12).standard_normal((8, 5))
    plan = lstsq(a, np.ones(8), explain=True)
    assert plan.kind == "lstsq"
    assert plan.chosen_driver == "la_gels"
    assert plan.structure == "general"


def test_eig_banded_symmetric_still_routes_symmetric():
    """The eig verb refines on the symmetry flags, not the band label:
    a symmetric tridiagonal operand solves via la_gtsv but its
    eigenproblem belongs to la_syev."""
    n = 8
    d = np.arange(1.0, n + 1)
    e = np.ones(n - 1)
    a = np.diag(d) + np.diag(e, 1) + np.diag(e, -1)
    splan = solve(a, np.ones(n), explain=True)
    assert splan.chosen_driver == "la_gtsv"
    eplan = eig(a, explain=True)
    assert eplan.chosen_driver == "la_syev"
