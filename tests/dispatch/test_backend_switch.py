"""Satellite seam: an *effective* backend switch must reset the
departed backend's rate-limited warning windows — but only when the
switch is durable (``set_backend`` or a ``use_backend`` entry).  The
context manager's restore leg runs on every per-call ``backend=``
escape hatch, so resetting there would turn one suppressed fallback
warning into a flood."""

import warnings

import numpy as np
import pytest

from repro import backends, la_gesv
from repro.backends import Backend, BackendFallbackWarning
from repro.errors import Info


@pytest.fixture
def ghost_backend():
    """A registered-but-empty substrate: every dispatch falls back to
    reference with a rate-limited BackendFallbackWarning."""
    backends.register_backend(Backend("ghost", {}))
    backends.reset_fallback_announcements()
    try:
        yield "ghost"
    finally:
        backends.set_backend("reference")
        backends.unregister_backend("ghost")
        backends.reset_fallback_announcements()


def _solve_once():
    a = np.array([[4.0, 1.0], [1.0, 3.0]])
    b = a @ np.ones(2)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        la_gesv(a, b, info=Info())
    return [w for w in caught
            if issubclass(w.category, BackendFallbackWarning)]


def test_fallback_warning_is_rate_limited(ghost_backend):
    backends.set_backend(ghost_backend)
    assert len(_solve_once()) == 1
    assert _solve_once() == []          # suppressed within the window


def test_durable_switch_reopens_the_departed_window(ghost_backend):
    backends.set_backend(ghost_backend)
    assert len(_solve_once()) == 1
    assert _solve_once() == []
    # Leaving ghost durably forgets its suppression history: coming
    # back re-announces exactly once instead of staying silent.
    backends.set_backend("reference")
    backends.set_backend(ghost_backend)
    assert len(_solve_once()) == 1
    assert _solve_once() == []


def test_context_restore_does_not_reopen_windows(ghost_backend):
    """Two consecutive ``use_backend("ghost")`` blocks: the restore
    between them is non-durable, so ghost's suppression history
    survives and the second block stays silent."""
    with backends.use_backend(ghost_backend):
        assert len(_solve_once()) == 1
        assert _solve_once() == []
    with backends.use_backend(ghost_backend):
        assert _solve_once() == []


def test_per_call_escape_hatch_does_not_flood(ghost_backend):
    """Repeated per-call ``backend="ghost"`` escapes round-trip the
    selection on every driver call; the restore leg must not reopen
    ghost's window, so the fallback announces once, not per call."""
    a = np.array([[4.0, 1.0], [1.0, 3.0]])
    announced = 0
    for _ in range(4):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            la_gesv(a.copy(), a @ np.ones(2), info=Info(),
                    backend="ghost")
        announced += sum(
            issubclass(w.category, BackendFallbackWarning)
            for w in caught)
    assert announced == 1