"""Structure probing: exact (bitwise) classification, adversarial
near-misses, and the stacked variant.

The probe is deliberately exact — ``np.array_equal(a, a.T)``, never a
tolerance — because the front door promises bit-identity with the
routed driver: a matrix that is within eps of symmetric but not equal
to its transpose would give ``la_sysv`` a *different* answer than
``la_gesv``, so it must route as general.
"""

import numpy as np

from repro.dispatch_front.probe import (Structure, bandwidths, probe,
                                        probe_stack)


def _rng(seed=0):
    return np.random.default_rng(seed)


def test_bandwidths():
    a = np.zeros((5, 5))
    a[np.diag_indices(5)] = 1.0
    assert bandwidths(a) == (0, 0)
    a[2, 0] = 1.0
    a[0, 1] = 1.0
    assert bandwidths(a) == (2, 1)


def test_diagonal_and_triangular():
    d = np.diag(np.arange(1.0, 5.0))
    assert probe(d).label == "diagonal"
    up = np.triu(_rng().standard_normal((6, 6))) + 6 * np.eye(6)
    st = probe(up)
    assert (st.label, st.uplo) == ("triangular", "U")
    lo = np.tril(_rng(1).standard_normal((6, 6))) + 6 * np.eye(6)
    st = probe(lo)
    assert (st.label, st.uplo) == ("triangular", "L")


def test_tridiagonal_and_banded():
    n = 12
    g = _rng(2).standard_normal((n, n))
    tri = np.triu(np.tril(g, 1), -1) + n * np.eye(n)
    assert probe(tri).label == "tridiagonal"
    band = np.triu(np.tril(g, 2), -3) + n * np.eye(n)
    st = probe(band)
    assert st.label == "banded"
    assert (st.kl, st.ku) == (3, 2)


def test_spd_retains_the_trial_factor():
    g = _rng(3).standard_normal((7, 7))
    a = g @ g.T + 7 * np.eye(7)
    a = (a + a.T) / 2
    st = probe(a)
    assert st.label == "spd"
    assert st.symmetric and st.hermitian
    assert st.cholesky is not None
    assert st.cholesky.shape == a.shape
    assert st.probe_cost > 0.0


def test_hpd_versus_complex_symmetric():
    g = _rng(4).standard_normal((6, 6)) \
        + 1j * _rng(5).standard_normal((6, 6))
    m = g @ g.conj().T
    hpd = (m + m.conj().T) / 2 + 6 * np.eye(6)
    st = probe(hpd)
    assert st.label == "hpd"
    assert st.hermitian and not st.symmetric
    csym = g + g.T          # complex symmetric, not Hermitian
    np.fill_diagonal(csym, csym.diagonal() + 6)
    assert probe(csym).label == "symmetric"


def test_indefinite_symmetric_is_not_spd():
    g = _rng(6).standard_normal((8, 8))
    a = g + g.T
    np.fill_diagonal(a, a.diagonal() - 50.0)    # negative definite
    st = probe(a)
    assert st.label == "symmetric"
    assert st.cholesky is None


def test_near_miss_almost_symmetric_routes_general():
    g = _rng(7).standard_normal((8, 8))
    a = g + g.T + 8 * np.eye(8)
    a[0, 7] += 1e-12            # within eps of symmetric — still general
    assert probe(a).label == "general"


def test_near_miss_bandwidth_n_minus_1_is_not_banded():
    n = 8
    a = np.eye(n)
    a[n - 1, 0] = 1.0           # kl = n-1
    a[0, n - 1] = 2.0           # ku = n-1, and not symmetric
    st = probe(a)
    assert st.label == "general"
    assert (st.kl, st.ku) == (n - 1, n - 1)


def test_non_square_probes_general():
    assert probe(np.ones((3, 5))).label == "general"
    assert probe(np.ones(4)).label == "general"


def test_structure_label_is_validated():
    try:
        Structure("banded-ish")
    except ValueError as exc:
        assert "banded-ish" in str(exc)
    else:
        raise AssertionError("bogus label accepted")


def test_probe_stack_classifies_uniform_stacks():
    g = _rng(8).standard_normal((3, 5, 5))
    sym = g + g.transpose(0, 2, 1) - 10 * np.eye(5)   # indefinite
    st = probe_stack(sym)
    assert st.label == "symmetric"
    spd = np.einsum("kij,klj->kil", g, g) + 5 * np.eye(5)
    spd = (spd + spd.transpose(0, 2, 1)) / 2
    assert probe_stack(spd).label == "spd"
    assert probe_stack(g).label == "general"
    assert probe_stack(np.ones((2, 3, 5))).label == "general"
