"""The front door's bit-identity contract, hypothesis-driven.

For every structure class, ``repro.solve`` must return the *same bits*
as calling the routed driver directly — same solution array, same
``Info`` code — on every registered backend.  The suite runs unchanged
under ``REPRO_CHAOS=1``: chaos faults are transient and the resilience
layer retries them, and armed faults pin dispatch to the reference
kernels for the front door and the direct call alike.
"""

import numpy as np
import pytest

from repro import (backends, eig, la_gbsv, la_gels, la_geev, la_gesv,
                   la_gtsv, la_hesv, la_posv, la_syev, la_sysv,
                   la_trtrs, lstsq, solve, use_backend)
from repro.dispatch_front import cache
from repro.dispatch_front.api import _band_storage
from repro.errors import Info

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

SETTINGS = dict(max_examples=20, deadline=None)

# n >= 3 keeps dense operands out of the tridiagonal band class (at
# n <= 2 *every* square matrix has kl, ku <= 1 and correctly routes to
# la_gtsv — the band ladder outranks symmetry for solves).
dims = st.integers(min_value=3, max_value=12)
seeds = st.integers(min_value=0, max_value=2**31 - 1)
backend_names = st.sampled_from(backends.available_backends())


def _pair(driver_result, driver_info, a, b, **solve_kw):
    """Run the front door on a fresh cache and compare bitwise."""
    cache.clear()
    info = Info()
    x = solve(a, b, info=info, **solve_kw)
    np.testing.assert_array_equal(x, driver_result)
    assert int(info) == int(driver_info)
    return info


@settings(**SETTINGS)
@given(n=dims, seed=seeds, name=backend_names)
def test_general_matches_la_gesv(n, seed, name):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n)) + n * np.eye(n)
    b = a @ rng.standard_normal(n)
    with use_backend(name):
        want, winfo = a.copy(), Info()
        bw = b.copy()
        la_gesv(want, bw, info=winfo)
        info = _pair(bw, winfo, a, b)
    assert info.chosen_driver == "la_gesv"
    assert info.structure == "general"


@settings(**SETTINGS)
@given(n=dims, seed=seeds, name=backend_names,
       iscomplex=st.booleans())
def test_definite_matches_la_posv_including_cached_refit(
        n, seed, name, iscomplex):
    rng = np.random.default_rng(seed)
    g = rng.standard_normal((n, n))
    if iscomplex:
        g = g + 1j * rng.standard_normal((n, n))
    m = g @ g.conj().T
    a = (m + m.conj().T) / 2 + n * np.eye(n)
    b = a @ rng.standard_normal(n)
    with use_backend(name):
        bw, winfo = b.copy(), Info()
        la_posv(a.copy(), bw, uplo="U", info=winfo)
        info = _pair(bw, winfo, a, b)
        # The repeat solve reuses the cached trial-Cholesky factor
        # (potrs path) and must still be bit-identical to the driver.
        again = Info()
        x2 = solve(a, b, info=again)
        np.testing.assert_array_equal(x2, bw)
        assert again.probe_cost == 0.0
    assert info.structure == ("hpd" if iscomplex else "spd")
    assert info.chosen_driver == "la_posv"


@settings(**SETTINGS)
@given(n=dims, seed=seeds, name=backend_names)
def test_indefinite_symmetric_matches_la_sysv(n, seed, name):
    rng = np.random.default_rng(seed)
    g = rng.standard_normal((n, n))
    a = g + g.T
    np.fill_diagonal(a, a.diagonal() - 5.0 * n)   # indefinite, not PD
    b = a @ rng.standard_normal(n)
    with use_backend(name):
        bw, winfo = b.copy(), Info()
        la_sysv(a.copy(), bw, info=winfo)
        info = _pair(bw, winfo, a, b)
    assert info.chosen_driver == "la_sysv"
    assert info.structure == "symmetric"


@settings(**SETTINGS)
@given(n=dims, seed=seeds, name=backend_names)
def test_hermitian_indefinite_matches_la_hesv(n, seed, name):
    rng = np.random.default_rng(seed)
    g = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
    a = g + g.conj().T
    np.fill_diagonal(a, a.diagonal() - 5.0 * n)
    b = a @ rng.standard_normal(n)
    with use_backend(name):
        bw, winfo = b.astype(complex), Info()
        la_hesv(a.copy(), bw, info=winfo)
        info = _pair(bw, winfo, a, b)
    assert info.chosen_driver == "la_hesv"
    assert info.structure == "hermitian"


@settings(**SETTINGS)
@given(n=dims, seed=seeds, name=backend_names,
       lower=st.booleans())
def test_triangular_matches_la_trtrs(n, seed, name, lower):
    rng = np.random.default_rng(seed)
    g = rng.standard_normal((n, n)) + n * np.eye(n)
    a = np.tril(g) if lower else np.triu(g)
    b = a @ rng.standard_normal(n)
    with use_backend(name):
        bw, winfo = b.copy(), Info()
        la_trtrs(a, bw, uplo="L" if lower else "U", info=winfo)
        info = _pair(bw, winfo, a, b)
    assert info.chosen_driver == "la_trtrs"
    assert info.structure == ("diagonal" if n == 1 else "triangular")


@settings(**SETTINGS)
@given(n=st.integers(min_value=3, max_value=12), seed=seeds,
       name=backend_names)
def test_tridiagonal_matches_la_gtsv(n, seed, name):
    rng = np.random.default_rng(seed)
    a = np.triu(np.tril(rng.standard_normal((n, n)), 1), -1) \
        + n * np.eye(n)
    b = a @ rng.standard_normal(n)
    with use_backend(name):
        bw, winfo = b.copy(), Info()
        la_gtsv(a.diagonal(-1).copy(), a.diagonal().copy(),
                a.diagonal(1).copy(), bw, info=winfo)
        info = _pair(bw, winfo, a, b)
    assert info.chosen_driver == "la_gtsv"
    assert info.structure == "tridiagonal"


@settings(**SETTINGS)
@given(n=st.integers(min_value=9, max_value=16), seed=seeds,
       name=backend_names)
def test_banded_matches_la_gbsv(n, seed, name):
    rng = np.random.default_rng(seed)
    a = np.triu(np.tril(rng.standard_normal((n, n)), 2), -2) \
        + n * np.eye(n)
    b = a @ rng.standard_normal(n)
    with use_backend(name):
        bw, winfo = b.copy(), Info()
        la_gbsv(_band_storage(a, 2, 2), bw, kl=2, info=winfo)
        info = _pair(bw, winfo, a, b)
    assert info.chosen_driver == "la_gbsv"
    assert info.structure == "banded"


@settings(**SETTINGS)
@given(n=dims, m_extra=st.integers(min_value=0, max_value=4),
       seed=seeds, name=backend_names)
def test_lstsq_matches_la_gels(n, m_extra, seed, name):
    rng = np.random.default_rng(seed)
    m = n + m_extra
    a = rng.standard_normal((m, n))
    b = rng.standard_normal(m)
    with use_backend(name):
        cache.clear()
        aw, bw, winfo = a.copy(), b.copy(), Info()
        x_want = la_gels(aw, bw, info=winfo)
        info = Info()
        x = lstsq(a, b, info=info)
        np.testing.assert_array_equal(x, x_want)
        assert int(info) == int(winfo)
    assert info.chosen_driver == "la_gels"


@settings(**SETTINGS)
@given(n=dims, seed=seeds, name=backend_names)
def test_eig_symmetric_matches_la_syev(n, seed, name):
    rng = np.random.default_rng(seed)
    g = rng.standard_normal((n, n))
    a = g + g.T
    with use_backend(name):
        cache.clear()
        aw = a.copy()
        w_want = la_syev(aw, jobz="V")
        info = Info()
        w, v = eig(a, vectors=True, info=info)
        np.testing.assert_array_equal(w, w_want)
        np.testing.assert_array_equal(v, aw)
    assert info.chosen_driver == "la_syev"
    assert list(w) == sorted(w)


@settings(**SETTINGS)
@given(n=dims, seed=seeds, name=backend_names)
def test_eig_general_matches_la_geev(n, seed, name):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    hypothesis.assume(not np.array_equal(a, a.T))
    with use_backend(name):
        cache.clear()
        w_want = la_geev(a.copy())
        info = Info()
        w = eig(a, info=info)
        np.testing.assert_array_equal(w, w_want)
    assert info.chosen_driver == "la_geev"
    assert info.structure == "general"
