"""XB4 — structured drivers beat the dense driver on their structures.

One physical problem (the 1-D Poisson chain) through four Appendix-G
drivers: dense LU, dense Cholesky, band Cholesky, SPD tridiagonal.  The
expected ordering — GESV > POSV > PBSV > PTSV in time — is the
driver-selection guidance the LAPACK90 catalogue encodes, asserted here.
"""

import time

import numpy as np
import pytest

from repro import la_gesv, la_pbsv, la_posv, la_ptsv
from repro.storage import full_to_sym_band

from .conftest import poisson1d

N = 400


@pytest.fixture
def problem():
    a = poisson1d(N)
    rng = np.random.default_rng(3)
    f = rng.standard_normal(N)
    return a, f


def test_dense_gesv(benchmark, problem):
    a, f = problem
    benchmark(lambda: la_gesv(a.copy(), f.copy()))


def test_dense_posv(benchmark, problem):
    a, f = problem
    benchmark(lambda: la_posv(a.copy(), f.copy()))


def test_band_pbsv(benchmark, problem):
    a, f = problem
    ab = full_to_sym_band(a, 1, "U")
    benchmark(lambda: la_pbsv(ab.copy(), f.copy()))


def test_tridiag_ptsv(benchmark, problem):
    _, f = problem
    d = np.full(N, 2.0)
    e = np.full(N - 1, -1.0)
    benchmark(lambda: la_ptsv(d.copy(), e.copy(), f.copy()))


def test_structure_exploitation_ordering(problem):
    """The crossover claim: O(n) tridiagonal < O(n·k²) band < O(n³) dense."""
    a, f = problem
    ab = full_to_sym_band(a, 1, "U")
    d = np.full(N, 2.0)
    e = np.full(N - 1, -1.0)

    def best_of(fn, reps=3):
        best = np.inf
        for _ in range(reps):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    t_dense = best_of(lambda: la_gesv(a.copy(), f.copy()))
    t_band = best_of(lambda: la_pbsv(ab.copy(), f.copy()))
    t_tri = best_of(lambda: la_ptsv(d.copy(), e.copy(), f.copy()))
    print(f"\nXB4  n={N}: GESV {t_dense:.4f}s  PBSV {t_band:.4f}s  "
          f"PTSV {t_tri:.4f}s")
    assert t_tri < t_dense, "tridiagonal must beat dense"
    assert t_band < t_dense, "band must beat dense"
    # All agree numerically.
    x1, x2, x3 = f.copy(), f.copy(), f.copy()
    la_gesv(a.copy(), x1)
    la_pbsv(ab.copy(), x2)
    la_ptsv(d.copy(), e.copy(), x3)
    np.testing.assert_allclose(x2, x1, atol=1e-8)
    np.testing.assert_allclose(x3, x1, atol=1e-8)
