"""XB2 — blocked vs unblocked factorizations.

The paper's §1.1 recounts LAPACK's raison d'être: reorganize algorithms
around Level-3 BLAS blocks so the memory hierarchy is amortized.  In
this substrate the "tuned Level-3 BLAS" is NumPy's matmul, so blocked
factorization beats the unblocked column-at-a-time form for the same
reason — this ablation measures that win on LU, Cholesky and QR.
"""

import time

import numpy as np
import pytest

from repro import config
from repro.lapack77 import geqrf, getrf, potrf

N = 256


@pytest.fixture
def mats(rng):
    a = rng.standard_normal((N, N)) + np.eye(N) * N
    g = rng.standard_normal((N, N))
    spd = g @ g.T + np.eye(N) * N
    return a, spd


@pytest.mark.parametrize("nb", [1, 64], ids=["unblocked", "blocked"])
def test_getrf_blocking(benchmark, mats, nb):
    a0, _ = mats

    def run():
        with config.block_size_override("getrf", nb):
            getrf(a0.copy())

    benchmark(run)


@pytest.mark.parametrize("nb", [1, 64], ids=["unblocked", "blocked"])
def test_potrf_blocking(benchmark, mats, nb):
    _, spd = mats

    def run():
        with config.block_size_override("potrf", nb):
            potrf(spd.copy(), "U")

    benchmark(run)


@pytest.mark.parametrize("nb", [1, 32], ids=["unblocked", "blocked"])
def test_geqrf_blocking(benchmark, mats, nb):
    a0, _ = mats

    def run():
        with config.block_size_override("geqrf", nb):
            geqrf(a0.copy())

    benchmark(run)


def test_blocking_wins(mats):
    """The §1.1 claim asserted: blocked LU is faster at N = 256."""
    a0, _ = mats

    def best_of(nb, reps=3):
        best = np.inf
        for _ in range(reps):
            a = a0.copy()
            t0 = time.perf_counter()
            with config.block_size_override("getrf", nb):
                getrf(a)
            best = min(best, time.perf_counter() - t0)
        return best

    t_unblocked = best_of(1)
    t_blocked = best_of(64)
    speedup = t_unblocked / t_blocked
    print(f"\nXB2  getrf N={N}: unblocked {t_unblocked:.4f}s, "
          f"blocked {t_blocked:.4f}s, speedup {speedup:.2f}x")
    assert speedup > 1.0, "blocked LU should not be slower"
