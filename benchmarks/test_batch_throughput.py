"""XB4 — batched drivers vs the per-problem loop.

Throughput (solves/sec) of ``batch_gesv`` over a ``(batch, n, n)``
stack against looping the scalar ``la_gesv``, at batch ∈ {1, 16, 256}
on every registered backend.  The batched wrapper amortizes validation
(one ladder per stack), ERINFO (one verdict) and — on substrates with a
native ``gesv_stack`` entry — the dispatch-seam crossing itself, so
throughput must scale with batch while the loop pays full driver
overhead per problem.  Results land in ``BENCH_batch.json`` (see
conftest); the floor test pins the acceptance criterion: ≥ 3× at
batch=256 on the accelerated backend.

The problems are small (n=8) on purpose: that is the regime batched
interfaces exist for — per-problem overhead rivals the numerical work.
"""

import time
import warnings

import numpy as np
import pytest

from repro import backends, la_gesv
from repro.batch import batch_gesv

from .conftest import record_batch_timing

N = 8
BATCHES = (1, 16, 256)
BACKENDS = ("reference", "accelerated")


def _stack(rng, batch, n=N):
    a = rng.standard_normal((batch, n, n)) + n * np.eye(n)
    b = rng.standard_normal((batch, n, 1))
    return a, b


def _loop_gesv(a, b):
    for k in range(a.shape[0]):
        la_gesv(a[k].copy(), b[k].copy())


class TestBatchThroughput:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("batch", BATCHES)
    def test_batched(self, benchmark, rng, backend, batch):
        if backend not in backends.available_backends():
            pytest.skip("backend {!r} not registered".format(backend))
        a, b = _stack(rng, batch)
        benchmark.extra_info.update(backend=backend, batch=batch,
                                    mode="batched")
        with backends.use_backend(backend):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                benchmark(lambda: batch_gesv(a.copy(), b.copy()))
        if benchmark.stats is not None:
            record_batch_timing("gesv", backend, batch, N, "batched",
                                benchmark.stats.stats)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("batch", BATCHES)
    def test_looped(self, benchmark, rng, backend, batch):
        if backend not in backends.available_backends():
            pytest.skip("backend {!r} not registered".format(backend))
        a, b = _stack(rng, batch)
        benchmark.extra_info.update(backend=backend, batch=batch,
                                    mode="looped")
        with backends.use_backend(backend):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                benchmark(_loop_gesv, a, b)
        if benchmark.stats is not None:
            record_batch_timing("gesv", backend, batch, N, "looped",
                                benchmark.stats.stats)


def test_batched_speedup_floor_at_256(rng):
    """Acceptance floor: at batch=256 on the accelerated backend the
    derived wrapper must deliver ≥ 3× the looped driver's throughput
    (measured directly — best of 5 rounds each — so the gate holds even
    under --benchmark-disable)."""
    if "accelerated" not in backends.available_backends():
        pytest.skip("accelerated backend not registered")
    a, b = _stack(rng, 256)

    def best_of(fn, rounds=5):
        times = []
        for _ in range(rounds):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    with backends.use_backend("accelerated"):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            batch_gesv(a.copy(), b.copy())       # warm caches/dispatch
            t_batched = best_of(lambda: batch_gesv(a.copy(), b.copy()))
            t_looped = best_of(lambda: _loop_gesv(a, b))
    ratio = t_looped / t_batched
    assert ratio >= 3.0, (
        f"batched gesv only {ratio:.2f}x looped at batch=256 "
        f"({256 / t_batched:,.0f} vs {256 / t_looped:,.0f} solves/s)")
