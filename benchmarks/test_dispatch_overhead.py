"""XB5 — what the front door costs, and what the cache buys.

Three measurements on ``la_gesv``-sized traffic (N = 384), flushed to
``BENCH_dispatch.json`` by the conftest session hook:

* **cached dispatch overhead** — ``repro.solve`` with a warm structure
  cache vs calling the routed driver directly.  The warm path pays one
  cache lookup (metadata + sampled fingerprint revalidation) and one
  walk of the spec-derived routing table; the acceptance gate pins it
  under 5% of the direct call.
* **cold probe cost** — the one-time classification (bandwidth sweep,
  bitwise symmetry test) a first-seen operand pays.
* **SPD-traffic win** — repeated ``solve`` against the same SPD operand
  reuses the cached trial-Cholesky factor and goes straight to
  ``potrs``, skipping the O(n³/3) refactorization ``la_posv`` pays on
  every direct call.

All timings are measured directly (best of R rounds) so the gates hold
under ``--benchmark-disable``.
"""

import time
import warnings

import numpy as np

from repro import backends, la_gesv, la_posv, solve
from repro.dispatch_front import cache
from repro.dispatch_front.probe import probe

from .conftest import record_dispatch

N = 384
ROUNDS = 7


def _best_of(fn, rounds=ROUNDS):
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def _general_system(n=N, seed=7):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n)) + n * np.eye(n)
    b = a @ rng.standard_normal(n)
    return a, b


def _spd_system(n=N, seed=8):
    rng = np.random.default_rng(seed)
    g = rng.standard_normal((n, n))
    a = g @ g.T + n * np.eye(n)
    a = (a + a.T) / 2
    b = a @ rng.standard_normal(n)
    return a, b


def test_cached_dispatch_overhead_under_5_percent():
    """The acceptance gate: with the structure already cached, the front
    door adds < 5% to a direct ``la_gesv`` call on N=384 traffic."""
    a, b = _general_system()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        cache.clear()
        solve(a, b)                       # probe once: warm the cache
        t_front = _best_of(lambda: solve(a, b))
        t_direct = _best_of(lambda: la_gesv(a.copy(), b.copy()))
    overhead = t_front / t_direct - 1.0
    record_dispatch("cached_gesv", {
        "n": N,
        "backend": backends.get_backend_name(),
        "direct_min_s": t_direct,
        "front_door_min_s": t_front,
        "overhead_ratio": overhead,
        "gate": "overhead_ratio < 0.05",
    })
    assert overhead < 0.05, (
        f"cached dispatch costs {overhead:.1%} over direct la_gesv "
        f"({t_front * 1e3:.3f} ms vs {t_direct * 1e3:.3f} ms)")


def test_cold_probe_cost_is_recorded():
    """The one-time classification cost for a first-seen operand —
    bounded loosely (well under one solve), recorded precisely."""
    a, b = _general_system(seed=9)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        t_probe = _best_of(lambda: probe(a))
        t_direct = _best_of(lambda: la_gesv(a.copy(), b.copy()))
    record_dispatch("cold_probe", {
        "n": N,
        "probe_min_s": t_probe,
        "direct_gesv_min_s": t_direct,
        "probe_vs_solve": t_probe / t_direct,
    })
    assert t_probe < t_direct, (
        f"probing ({t_probe * 1e3:.3f} ms) costs more than the solve "
        f"it routes ({t_direct * 1e3:.3f} ms)")


def test_spd_traffic_win_from_cached_factor():
    """Repeat solves against one SPD operand skip the refactorization:
    the cached-potrs route must beat direct ``la_posv``."""
    a, b = _spd_system()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        cache.clear()
        solve(a, b)                       # probe + retain the factor
        t_front = _best_of(lambda: solve(a, b))
        t_direct = _best_of(lambda: la_posv(a.copy(), b.copy(),
                                            uplo="U"))
    win = t_direct / t_front
    record_dispatch("spd_cached_reuse", {
        "n": N,
        "backend": backends.get_backend_name(),
        "direct_posv_min_s": t_direct,
        "front_door_min_s": t_front,
        "speedup": win,
        "gate": "speedup > 1.0",
    })
    assert win > 1.0, (
        f"cached-factor SPD route is {win:.2f}x direct la_posv "
        f"({t_front * 1e3:.3f} ms vs {t_direct * 1e3:.3f} ms)")
