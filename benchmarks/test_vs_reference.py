"""XB3 — this substrate vs the scipy/LAPACK reference.

The paper's numbers come from vendor-tuned FORTRAN; ours from pure
NumPy.  The reference must win (it is compiled LAPACK), but the blocked
Level-3 organization keeps the gap to a modest constant factor on the
matmul-dominated routines — the *shape* that transfers from the paper's
performance story.  Accuracy agreement is asserted alongside.
"""

import numpy as np
import pytest
import scipy.linalg as sla

from repro import la_gesv, la_posv, la_syev
from repro.lapack77 import gesvd

N = 200


@pytest.fixture
def workloads(rng):
    a = rng.standard_normal((N, N)) + np.eye(N) * N
    g = rng.standard_normal((N, N))
    spd = g @ g.T + np.eye(N) * N
    sym = g + g.T
    b = rng.standard_normal(N)
    return a, spd, sym, b


class TestSolve:
    def test_repro_gesv(self, benchmark, workloads):
        a, _, _, b = workloads
        benchmark(lambda: la_gesv(a.copy(), b.copy()))

    def test_scipy_solve(self, benchmark, workloads):
        a, _, _, b = workloads
        benchmark(lambda: sla.solve(a, b))

    def test_agreement(self, workloads):
        a, _, _, b = workloads
        x1 = b.copy()
        la_gesv(a.copy(), x1)
        x2 = sla.solve(a, b)
        np.testing.assert_allclose(x1, x2, atol=1e-10)


class TestCholeskySolve:
    def test_repro_posv(self, benchmark, workloads):
        _, spd, _, b = workloads
        benchmark(lambda: la_posv(spd.copy(), b.copy()))

    def test_scipy_posv(self, benchmark, workloads):
        _, spd, _, b = workloads
        benchmark(lambda: sla.solve(spd, b, assume_a="pos"))


class TestSymmetricEigen:
    def test_repro_syev(self, benchmark, workloads):
        _, _, sym, _ = workloads
        benchmark(lambda: la_syev(sym.copy()))

    def test_scipy_eigvalsh(self, benchmark, workloads):
        _, _, sym, _ = workloads
        benchmark(lambda: sla.eigvalsh(sym))

    def test_agreement(self, workloads):
        _, _, sym, _ = workloads
        w1 = la_syev(sym.copy())
        w2 = sla.eigvalsh(sym)
        np.testing.assert_allclose(w1, w2, atol=1e-8 * np.abs(sym).max())


class TestSVD:
    def test_repro_gesvd(self, benchmark, workloads):
        a, *_ = workloads
        benchmark(lambda: gesvd(a.copy(), jobu="N", jobvt="N"))

    def test_scipy_svdvals(self, benchmark, workloads):
        a, *_ = workloads
        benchmark(lambda: sla.svdvals(a))

    def test_agreement(self, workloads):
        a, *_ = workloads
        s1, *_rest = gesvd(a.copy(), jobu="N", jobvt="N")
        s2 = sla.svdvals(a)
        np.testing.assert_allclose(s1, s2, atol=1e-8 * s2[0])
