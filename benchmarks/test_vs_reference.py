"""XB3 — this substrate vs the scipy/LAPACK reference.

The paper's numbers come from vendor-tuned FORTRAN; ours from pure
NumPy.  The reference must win (it is compiled LAPACK), but the blocked
Level-3 organization keeps the gap to a modest constant factor on the
matmul-dominated routines — the *shape* that transfers from the paper's
performance story.  Accuracy agreement is asserted alongside.
"""

import warnings

import numpy as np
import pytest
import scipy.linalg as sla

from repro import backends, la_gesv, la_posv, la_syev, la_sysv
from repro.lapack77 import gesvd

from .conftest import record_backend_timing

N = 200


@pytest.fixture
def workloads(rng):
    a = rng.standard_normal((N, N)) + np.eye(N) * N
    g = rng.standard_normal((N, N))
    spd = g @ g.T + np.eye(N) * N
    sym = g + g.T
    b = rng.standard_normal(N)
    return a, spd, sym, b


class TestSolve:
    def test_repro_gesv(self, benchmark, workloads):
        a, _, _, b = workloads
        benchmark(lambda: la_gesv(a.copy(), b.copy()))

    def test_scipy_solve(self, benchmark, workloads):
        a, _, _, b = workloads
        benchmark(lambda: sla.solve(a, b))

    def test_agreement(self, workloads):
        a, _, _, b = workloads
        x1 = b.copy()
        la_gesv(a.copy(), x1)
        x2 = sla.solve(a, b)
        np.testing.assert_allclose(x1, x2, atol=1e-10)


class TestCholeskySolve:
    def test_repro_posv(self, benchmark, workloads):
        _, spd, _, b = workloads
        benchmark(lambda: la_posv(spd.copy(), b.copy()))

    def test_scipy_posv(self, benchmark, workloads):
        _, spd, _, b = workloads
        benchmark(lambda: sla.solve(spd, b, assume_a="pos"))


class TestSymmetricEigen:
    def test_repro_syev(self, benchmark, workloads):
        _, _, sym, _ = workloads
        benchmark(lambda: la_syev(sym.copy()))

    def test_scipy_eigvalsh(self, benchmark, workloads):
        _, _, sym, _ = workloads
        benchmark(lambda: sla.eigvalsh(sym))

    def test_agreement(self, workloads):
        _, _, sym, _ = workloads
        w1 = la_syev(sym.copy())
        w2 = sla.eigvalsh(sym)
        np.testing.assert_allclose(w1, w2, atol=1e-8 * np.abs(sym).max())


class TestBackendSweep:
    """XB3-backends — the same LA_* drivers timed under every registered
    backend; results land in ``BENCH_backends.json`` (see conftest)."""

    DRIVERS = {
        "gesv": lambda w: la_gesv(w["a"].copy(), w["b"].copy()),
        "posv": lambda w: la_posv(w["spd"].copy(), w["b"].copy()),
        "sysv": lambda w: la_sysv(w["sym"].copy() + np.eye(N) * N,
                                  w["b"].copy()),
        "syev": lambda w: la_syev(w["sym"].copy()),
    }

    @pytest.fixture
    def named_workloads(self, workloads):
        a, spd, sym, b = workloads
        return {"a": a, "spd": spd, "sym": sym, "b": b}

    @pytest.mark.parametrize("backend", ["reference", "accelerated"])
    @pytest.mark.parametrize("routine", sorted(DRIVERS))
    def test_driver(self, benchmark, named_workloads, routine, backend):
        if backend not in backends.available_backends():
            pytest.skip("backend {!r} not registered".format(backend))
        call = self.DRIVERS[routine]
        benchmark.extra_info["backend"] = backend
        with backends.use_backend(backend):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                benchmark(call, named_workloads)
        if benchmark.stats is not None:  # absent under --benchmark-disable
            record_backend_timing(routine, backend, N,
                                  benchmark.stats.stats)


class TestSVD:
    def test_repro_gesvd(self, benchmark, workloads):
        a, *_ = workloads
        benchmark(lambda: gesvd(a.copy(), jobu="N", jobvt="N"))

    def test_scipy_svdvals(self, benchmark, workloads):
        a, *_ = workloads
        benchmark(lambda: sla.svdvals(a))

    def test_agreement(self, workloads):
        a, *_ = workloads
        s1, *_rest = gesvd(a.copy(), jobu="N", jobvt="N")
        s2 = sla.svdvals(a)
        np.testing.assert_allclose(s1, s2, atol=1e-8 * s2[0])
