"""XB6-lalint — wall time of a full lalint sweep over the shipped tree.

The interprocedural pass (helper summaries, kernel effect tables, the
shared flow cache, and the concurrency pass's lockset replay) must stay
cheap enough to run on every CI push: one cold end-to-end run — parse,
interpret, all twenty-six rules — is timed and recorded to
BENCH_lalint.json, and the run must finish well under a minute.  The
memo numbers ride along so a regression in summary reuse shows up as a
count, not just as seconds.
"""

import json
import pathlib
import time

REPO = pathlib.Path(__file__).resolve().parents[1]
BENCH_PATH = REPO / "BENCH_lalint.json"
BUDGET_S = 60.0


def test_full_lalint_sweep_fits_the_ci_budget():
    from repro.analysis import Project, run_rules

    start = time.perf_counter()
    project = Project.load([str(REPO / "src" / "repro")])
    loaded = time.perf_counter()
    findings = run_rules(project)
    elapsed = time.perf_counter() - start

    cache = getattr(project, "_laflow_cache", {})
    engine = cache.get("engine")
    conc = getattr(project, "_laconc_cache", {})
    conc_engine = conc.get("engine")
    out = {
        "experiment": "XB6-lalint",
        "description": "One cold lalint sweep of src/repro: parse, "
                       "interpret every driver flow (interprocedural "
                       "summaries + kernel effects + the lockset-"
                       "replaying concurrency pass), run LA001-LA026.",
        "modules": len(project.modules),
        "driver_flows": len(cache.get("flows", ())),
        "kernel_effects": len(cache.get("effects", ())),
        "helper_summaries_computed":
            engine.computed if engine else None,
        "concurrency_roots": len(conc.get("runs", ())),
        "concurrency_summaries_computed":
            conc_engine.computed if conc_engine else None,
        "findings": len(findings),
        "load_s": round(loaded - start, 4),
        "total_s": round(elapsed, 4),
        "budget_s": BUDGET_S,
    }
    BENCH_PATH.write_text(json.dumps(out, indent=2, sort_keys=True)
                          + "\n")

    assert findings == [], [f.render() for f in findings]
    assert elapsed < BUDGET_S, (
        f"lalint sweep took {elapsed:.1f}s, budget {BUDGET_S}s")
