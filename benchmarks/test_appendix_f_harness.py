"""APX-F — the Appendix F LA_GESV test program, both outcomes.

Regenerates the paper's two test reports:

* "Test Runs Correctly" — threshold 10.0, all 12 tests + 9 error exits
  pass (the exact Appendix-F counts),
* "Test Partly Fails" — a threshold below the hardest case's ratio makes
  the 300×300 ill-conditioned, 50-RHS case fail, as in the paper (our
  absolute ratios are smaller than the paper's 5.31 because the test
  matrices differ; the *shape* — failure concentrated on the biggest
  ill-conditioned matrix — is the reproduced result; see EXPERIMENTS.md).
"""

import numpy as np
import pytest

from repro.testing import GesvTestProgram


def test_runs_correctly_report(benchmark):
    """Paper Appendix F, first report: threshold 10.0 ⇒ 12/12 + 9/9."""
    def run():
        return GesvTestProgram(threshold=10.0).run()

    report = benchmark(run)
    text = report.format()
    print("\n" + text)
    assert report.passed == 12
    assert report.failed == 0
    assert report.error_exits_run == 9
    assert report.error_exits_passed == 9
    assert "The biggest tested matrix was 300 x 300" in text
    assert f"the machine eps = {1.19209E-07:.5E}" in text


def test_partly_fails_report():
    """Paper Appendix F, second report: a tighter threshold trips on the
    hardest case (largest ill-conditioned matrix, 50 RHS)."""
    baseline = GesvTestProgram(threshold=10.0).run()
    worst = max(c.ratio for c in baseline.cases)
    report = GesvTestProgram(threshold=worst * 0.999).run()
    text = report.format()
    print("\n" + text)
    assert report.failed >= 1
    assert report.passed == 12 - report.failed
    # The failure sits on the biggest matrix, as in the paper.
    for c in report.cases:
        if not c.passed:
            assert c.n == 300
            assert "Failed." in text
    assert report.error_exits_passed == 9


def test_ratio_scaling_with_n():
    """The ratio's growth with matrix size — the behaviour that makes the
    300×300 case the paper's failure point."""
    report = GesvTestProgram(threshold=10.0).run()
    by_n = {}
    for c in report.cases:
        by_n.setdefault(c.n, []).append(c.ratio)
    sizes = sorted(by_n)
    means = [np.mean(by_n[n]) for n in sizes]
    print("\nAPX-F ratio growth:",
          "  ".join(f"n={n}: {m:.3f}" for n, m in zip(sizes, means)))
    assert means[-1] > means[0], "ratio should grow with n"
