"""XB5 — what the expert driver's extras cost.

LA_GESVX adds condition estimation, iterative refinement and error
bounds on top of LA_GESV's factor+solve.  Each extra is O(n²) per RHS
against the O(n³) factorization, so the full expert pipeline should cost
a bounded multiple of the simple driver — measured here, stage by stage.
"""

import time

import numpy as np
import pytest

from repro import la_gesv, la_gesvx
from repro.lapack77 import gecon, gerfs, getrf, getrs, lange

N = 200


@pytest.fixture
def system(rng):
    a = rng.standard_normal((N, N)) + np.eye(N) * N
    b = rng.standard_normal(N)
    return a, b


def test_simple_driver(benchmark, system):
    a, b = system
    benchmark(lambda: la_gesv(a.copy(), b.copy()))


def test_expert_driver(benchmark, system):
    a, b = system
    benchmark(lambda: la_gesvx(a.copy(), b.copy()))


def test_stage_factor(benchmark, system):
    a, _ = system
    benchmark(lambda: getrf(a.copy()))


def test_stage_condition(benchmark, system):
    a, _ = system
    af = a.copy()
    getrf(af)
    anorm = lange("1", a)
    benchmark(lambda: gecon(af, anorm))


def test_stage_refine(benchmark, system):
    a, b = system
    af = a.copy()
    ipiv, _ = getrf(af)
    x = b.copy()
    getrs(af, ipiv, x)
    benchmark(lambda: gerfs(a, af, ipiv, b.copy(), x.copy()))


def test_expert_premium_bounded(system):
    """The decomposition claim: expert ≤ a few × simple at N = 200."""
    a, b = system

    def best_of(fn, reps=3):
        best = np.inf
        for _ in range(reps):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    t_simple = best_of(lambda: la_gesv(a.copy(), b.copy()))
    t_expert = best_of(lambda: la_gesvx(a.copy(), b.copy()))
    premium = t_expert / t_simple
    print(f"\nXB5  n={N}: LA_GESV {t_simple:.4f}s  LA_GESVX "
          f"{t_expert:.4f}s  premium {premium:.2f}x")
    assert premium < 15, "expert extras are lower-order terms"
