"""Shared benchmark fixtures and workload builders."""

import json
import pathlib

import numpy as np
import pytest

# (routine, backend) -> timing record, filled by the backend sweep in
# test_vs_reference.py and flushed to BENCH_backends.json at session end
# so the reference-vs-accelerated perf trajectory accumulates over time.
BACKEND_RECORDS = {}


def record_backend_timing(routine, backend, n, stats):
    BACKEND_RECORDS[(routine, backend)] = {
        "routine": routine,
        "backend": backend,
        "n": n,
        "min_s": stats.min,
        "mean_s": stats.mean,
        "stddev_s": stats.stddev,
        "rounds": stats.rounds,
    }


def pytest_sessionfinish(session, exitstatus):
    if not BACKEND_RECORDS:
        return
    rows = [BACKEND_RECORDS[k] for k in sorted(BACKEND_RECORDS)]
    ratios = {}
    for row in rows:
        if row["backend"] != "accelerated":
            continue
        ref = BACKEND_RECORDS.get((row["routine"], "reference"))
        if ref:
            ratios[row["routine"]] = ref["min_s"] / row["min_s"]
    out = {
        "experiment": "XB3-backends",
        "description": "LA_* driver wall time under each registered "
                       "backend (min over rounds); speedup = "
                       "reference/accelerated",
        "results": rows,
        "speedup_accelerated": ratios,
    }
    path = pathlib.Path(__file__).resolve().parents[1] / "BENCH_backends.json"
    path.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")


@pytest.fixture
def rng():
    return np.random.default_rng(19980328)


def fig3_system(n=500, nrhs=2, dtype=np.float32, seed=1):
    """The paper Fig. 3 workload: random A, B built so X(:, j) = j."""
    rng = np.random.default_rng(seed)
    a = rng.random((n, n)).astype(dtype)
    b = np.column_stack([a.sum(axis=1) * j
                         for j in range(1, nrhs + 1)]).astype(dtype)
    return a, b


def poisson1d(n):
    return (np.diag(np.full(n, 2.0)) + np.diag(np.full(n - 1, -1.0), 1)
            + np.diag(np.full(n - 1, -1.0), -1))
