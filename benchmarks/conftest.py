"""Shared benchmark fixtures and workload builders."""

import json
import pathlib

import numpy as np
import pytest

# (routine, backend) -> timing record, filled by the backend sweep in
# test_vs_reference.py and flushed to BENCH_backends.json at session end
# so the reference-vs-accelerated perf trajectory accumulates over time.
BACKEND_RECORDS = {}

# (routine, backend, batch, mode) -> throughput record, filled by
# test_batch_throughput.py and flushed to BENCH_batch.json: solves/sec
# of the derived batch_* wrapper vs looping the scalar driver.
BATCH_RECORDS = {}

# measurement name -> record, filled by test_dispatch_overhead.py and
# flushed to BENCH_dispatch.json: the front door's cached-dispatch
# overhead vs the direct driver call, the cold probe cost, and the
# SPD-traffic win from cached-factor reuse.
DISPATCH_RECORDS = {}


def record_backend_timing(routine, backend, n, stats):
    BACKEND_RECORDS[(routine, backend)] = {
        "routine": routine,
        "backend": backend,
        "n": n,
        "min_s": stats.min,
        "mean_s": stats.mean,
        "stddev_s": stats.stddev,
        "rounds": stats.rounds,
    }


def record_batch_timing(routine, backend, batch, n, mode, stats):
    BATCH_RECORDS[(routine, backend, batch, mode)] = {
        "routine": routine,
        "backend": backend,
        "batch": batch,
        "n": n,
        "mode": mode,
        "min_s": stats.min,
        "mean_s": stats.mean,
        "solves_per_s": batch / stats.min,
        "rounds": stats.rounds,
    }


def _write_backends_report(root):
    rows = [BACKEND_RECORDS[k] for k in sorted(BACKEND_RECORDS)]
    ratios = {}
    for row in rows:
        if row["backend"] != "accelerated":
            continue
        ref = BACKEND_RECORDS.get((row["routine"], "reference"))
        if ref:
            ratios[row["routine"]] = ref["min_s"] / row["min_s"]
    out = {
        "experiment": "XB3-backends",
        "description": "LA_* driver wall time under each registered "
                       "backend (min over rounds); speedup = "
                       "reference/accelerated",
        "results": rows,
        "speedup_accelerated": ratios,
    }
    (root / "BENCH_backends.json").write_text(
        json.dumps(out, indent=2, sort_keys=True) + "\n")


def _write_batch_report(root):
    rows = [BATCH_RECORDS[k] for k in sorted(BATCH_RECORDS)]
    speedups = {}
    for (routine, backend, batch, mode) in sorted(BATCH_RECORDS):
        if mode != "batched":
            continue
        looped = BATCH_RECORDS.get((routine, backend, batch, "looped"))
        if looped:
            batched = BATCH_RECORDS[(routine, backend, batch, "batched")]
            speedups.setdefault(backend, {})[str(batch)] = (
                batched["solves_per_s"] / looped["solves_per_s"])
    out = {
        "experiment": "XB4-batch",
        "description": "Throughput (solves/sec, min-time round) of the "
                       "derived batch_* wrappers over a problem stack "
                       "vs looping the scalar LA_* driver; speedup = "
                       "batched/looped per (backend, batch)",
        "results": rows,
        "speedup_batched": speedups,
    }
    (root / "BENCH_batch.json").write_text(
        json.dumps(out, indent=2, sort_keys=True) + "\n")


def record_dispatch(name, record):
    DISPATCH_RECORDS[name] = record


def _write_dispatch_report(root):
    out = {
        "experiment": "XB5-dispatch",
        "description": "Front-door auto-dispatch cost: repro.solve with "
                       "a warm structure cache vs calling the routed "
                       "driver directly (gate: < 5% overhead on "
                       "la_gesv-sized traffic), the cold probe cost, "
                       "and the SPD-traffic win from reusing the "
                       "cached trial-Cholesky factor",
        "results": {k: DISPATCH_RECORDS[k]
                    for k in sorted(DISPATCH_RECORDS)},
    }
    (root / "BENCH_dispatch.json").write_text(
        json.dumps(out, indent=2, sort_keys=True) + "\n")


def pytest_sessionfinish(session, exitstatus):
    root = pathlib.Path(__file__).resolve().parents[1]
    if BACKEND_RECORDS:
        _write_backends_report(root)
    if BATCH_RECORDS:
        _write_batch_report(root)
    if DISPATCH_RECORDS:
        _write_dispatch_report(root)


@pytest.fixture
def rng():
    return np.random.default_rng(19980328)


def fig3_system(n=500, nrhs=2, dtype=np.float32, seed=1):
    """The paper Fig. 3 workload: random A, B built so X(:, j) = j."""
    rng = np.random.default_rng(seed)
    a = rng.random((n, n)).astype(dtype)
    b = np.column_stack([a.sum(axis=1) * j
                         for j in range(1, nrhs + 1)]).astype(dtype)
    return a, b


def poisson1d(n):
    return (np.diag(np.full(n, 2.0)) + np.diag(np.full(n - 1, -1.0), 1)
            + np.diag(np.full(n - 1, -1.0), -1))
