"""Shared benchmark fixtures and workload builders."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    return np.random.default_rng(19980328)


def fig3_system(n=500, nrhs=2, dtype=np.float32, seed=1):
    """The paper Fig. 3 workload: random A, B built so X(:, j) = j."""
    rng = np.random.default_rng(seed)
    a = rng.random((n, n)).astype(dtype)
    b = np.column_stack([a.sum(axis=1) * j
                         for j in range(1, nrhs + 1)]).astype(dtype)
    return a, b


def poisson1d(n):
    return (np.diag(np.full(n, 2.0)) + np.diag(np.full(n - 1, -1.0), 1)
            + np.diag(np.full(n - 1, -1.0), -1))
