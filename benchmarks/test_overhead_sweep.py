"""XB1 — wrapper overhead vs problem size.

Extends FIG3 into a sweep: the F90 layer's cost is per-call and constant,
so its *relative* overhead must vanish as N grows — the quantitative
version of the paper's "the program is shorter and the call is simpler"
claim coming for free.
"""

import time

import numpy as np
import pytest

from repro import f77, la_gesv
from repro.lapack77 import gesv as substrate_gesv

SIZES = [10, 50, 100, 250]


def _sys(n, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n)) + np.eye(n) * n
    b = a @ np.ones((n, 1))
    return a, b


@pytest.mark.parametrize("n", SIZES)
def test_f90_layer(benchmark, n):
    a0, b0 = _sys(n)

    def run():
        a, b = a0.copy(), b0.copy()
        la_gesv(a, b)

    benchmark(run)


@pytest.mark.parametrize("n", SIZES)
def test_substrate_direct(benchmark, n):
    a0, b0 = _sys(n)

    def run():
        a, b = a0.copy(), b0.copy()
        substrate_gesv(a, b)

    benchmark(run)


def test_relative_overhead_vanishes():
    """The crossover claim: overhead fraction decays with N."""
    fractions = {}
    for n in SIZES:
        a0, b0 = _sys(n)

        def best_of(fn, reps=5):
            best = np.inf
            for _ in range(reps):
                a, b = a0.copy(), b0.copy()
                t0 = time.perf_counter()
                fn(a, b)
                best = min(best, time.perf_counter() - t0)
            return best

        t_sub = best_of(lambda a, b: substrate_gesv(a, b))
        t_f90 = best_of(lambda a, b: la_gesv(a, b))
        fractions[n] = (t_f90 - t_sub) / t_sub
    print("\nXB1 wrapper overhead fraction:",
          "  ".join(f"n={n}: {100 * f:+.1f}%"
                    for n, f in fractions.items()))
    # Noise can make individual points negative; the large-n point must
    # be small.
    assert fractions[SIZES[-1]] < 0.30
