"""FIG3 — paper Figure 3: CPU time of F77GESV vs F90GESV (N=500, NRHS=2).

The paper's Example 3 times the same solve through both modules to show
the convenience layer's cost.  The F90 wrapper adds only argument
validation and (optionally) pivot-array allocation on top of the F77
call, so the two times should be indistinguishable at N = 500 — that is
the experiment's claim, and the ``test_overhead_is_negligible`` assertion
checks exactly it.
"""

import numpy as np
import pytest

from repro import f77, la_gesv

from .conftest import fig3_system

N = 500
NRHS = 2


@pytest.fixture
def system():
    return fig3_system(N, NRHS)


def test_f77gesv(benchmark, system):
    """The paper's `CALL F77GESV( N, NRHS, A, LDA, IPIV, B, LDB, INFO )`."""
    a0, b0 = system
    ipiv = np.zeros(N, dtype=np.int64)

    def run():
        a, b = a0.copy(), b0.copy()
        return f77.la_gesv(N, NRHS, a, N, ipiv, b, N)

    info = benchmark(run)
    assert info == 0


def test_f90gesv(benchmark, system):
    """The paper's `CALL F90GESV( A, B )`."""
    a0, b0 = system

    def run():
        a, b = a0.copy(), b0.copy()
        la_gesv(a, b)
        return b

    b = benchmark(run)
    # X(:, j) = j by construction.
    np.testing.assert_allclose(b[:, 0], 1.0, atol=1e-2)


def test_f90gesv_with_ipiv(benchmark, system):
    """The wrapper with the optional IPIV supplied (no allocation path)."""
    a0, b0 = system
    ipiv = np.zeros(N, dtype=np.int64)

    def run():
        a, b = a0.copy(), b0.copy()
        la_gesv(a, b, ipiv=ipiv)
        return b

    benchmark(run)


def test_overhead_is_negligible(system):
    """The paper's point, asserted: at N = 500 the F90 interface costs
    within a few percent of the F77 interface (pure per-call overhead)."""
    import time
    a0, b0 = system
    ipiv = np.zeros(N, dtype=np.int64)

    def time_call(fn, reps=3):
        best = np.inf
        for _ in range(reps):
            a, b = a0.copy(), b0.copy()
            t0 = time.perf_counter()
            fn(a, b)
            best = min(best, time.perf_counter() - t0)
        return best

    t77 = time_call(lambda a, b: f77.la_gesv(N, NRHS, a, N, ipiv, b, N))
    t90 = time_call(lambda a, b: la_gesv(a, b))
    ratio = t90 / t77
    print(f"\nFIG3  N={N}: F77GESV {t77:.4f}s  F90GESV {t90:.4f}s  "
          f"ratio {ratio:.3f}")
    assert ratio < 1.25, "wrapper overhead should be a few percent at most"
