#!/usr/bin/env python
"""The expert drivers: condition estimation, equilibration, iterative
refinement and error bounds (LA_GESVX and friends).

Scenario: the same linear system in three states of health —
well-conditioned, badly scaled (equilibration rescues it), and genuinely
ill-conditioned (the error bounds warn honestly).

Run:  python examples/expert_drivers.py
"""

import numpy as np

from repro import Info, la_gesvx, la_posvx
from repro.lapack77.generators import latms_like


def well_conditioned():
    print("=== Healthy system ===")
    rng = np.random.default_rng(0)
    n = 50
    a = rng.standard_normal((n, n)) + np.eye(n) * n
    x_true = rng.standard_normal(n)
    b = a @ x_true
    res = la_gesvx(a.copy(), b)
    err = np.abs(res.x - x_true).max() / np.abs(x_true).max()
    print(f"  rcond estimate      = {res.rcond:.2e} "
          f"(true {1 / np.linalg.cond(a, 1):.2e})")
    print(f"  forward error bound = {res.ferr[0]:.2e},  actual = {err:.2e}")
    print(f"  backward error      = {res.berr[0]:.2e} (≈ eps: backward "
          "stable)")
    print(f"  pivot growth        = {res.rpvgrw:.2f}\n")


def badly_scaled():
    print("=== Badly scaled system: fact='E' equilibrates ===")
    rng = np.random.default_rng(1)
    n = 30
    a = rng.standard_normal((n, n)) + np.eye(n) * n
    a[0] *= 1e12
    a[:, 1] *= 1e-9
    x_true = rng.standard_normal(n)
    b = a @ x_true
    plain = la_gesvx(a.copy(), b.copy())
    equil = la_gesvx(a.copy(), b.copy(), fact="E")
    err_p = np.abs(plain.x - x_true).max() / np.abs(x_true).max()
    err_e = np.abs(equil.x - x_true).max() / np.abs(x_true).max()
    print(f"  without equilibration: rcond = {plain.rcond:.2e}, "
          f"error = {err_p:.2e}")
    print(f"  with    equilibration: rcond = {equil.rcond:.2e}, "
          f"error = {err_e:.2e}, equed = {equil.equed!r}")
    print("  (the scaled system's condition estimate reflects the true "
          "difficulty)\n")


def genuinely_ill_conditioned():
    print("=== Genuinely ill-conditioned: the bounds warn ===")
    rng = np.random.default_rng(2)
    n = 40
    for cond in (1e2, 1e6, 1e10, 1e14):
        a, _ = latms_like(n, n, cond=cond, rng=rng)
        x_true = rng.standard_normal(n)
        b = a @ x_true
        info = Info()
        res = la_gesvx(a.copy(), b, info=info)
        err = np.abs(res.x - x_true).max() / np.abs(x_true).max()
        flag = "  << info = n+1 (singular to working precision)" \
            if info.value == n + 1 else ""
        print(f"  cond = {cond:8.0e}:  rcond = {res.rcond:.1e}  "
              f"ferr = {res.ferr[0]:.1e}  actual = {err:.1e}{flag}")
    print()


def spd_expert():
    print("=== SPD expert driver (LA_POSVX) with factor reuse ===")
    rng = np.random.default_rng(3)
    n = 40
    g = rng.standard_normal((n, n))
    a = g @ g.T + np.eye(n) * n
    b1 = rng.standard_normal(n)
    res1 = la_posvx(a.copy(), b1)
    print(f"  first solve : rcond = {res1.rcond:.2e}, "
          f"berr = {res1.berr[0]:.1e}")
    # Re-solve with the cached Cholesky factor: no refactorization.
    b2 = rng.standard_normal(n)
    res2 = la_posvx(a.copy(), b2, af=res1.af, fact="F")
    ref = np.linalg.solve(a, b2)
    print(f"  factor reuse: max error vs direct solve = "
          f"{np.abs(res2.x - ref).max():.2e}")


if __name__ == "__main__":
    well_conditioned()
    badly_scaled()
    genuinely_ill_conditioned()
    spd_expert()
