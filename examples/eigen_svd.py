#!/usr/bin/env python
"""Eigenvalue and SVD workflows through the LAPACK90 drivers.

Three realistic jobs:

1. vibration analysis — normal modes of a mass-spring chain
   (LA_SYEV / LA_SYEVD / LA_SYEVX agree; the expert driver extracts just
   the lowest modes),
2. stability analysis — spectral abscissa of a nonsymmetric system
   matrix (LA_GEEV), plus its stable/unstable invariant subspace split
   (LA_GEES with SELECT),
3. data compression — low-rank approximation by truncated SVD
   (LA_GESVD) with the Eckart–Young error identity checked.

Run:  python examples/eigen_svd.py
"""

import numpy as np

from repro import (la_geev, la_gees, la_gesvd, la_syev, la_syevd,
                   la_syevx, la_stev)


def vibration_modes():
    print("=== 1. Normal modes of a mass-spring chain ===")
    n = 80
    # Stiffness matrix of a fixed-fixed chain: SPD tridiagonal.
    k = (np.diag(np.full(n, 2.0)) + np.diag(np.full(n - 1, -1.0), 1)
         + np.diag(np.full(n - 1, -1.0), -1))
    w_full = la_syev(k.copy())
    w_dc = la_syevd(k.copy())
    print(f"  QL vs divide-and-conquer agreement: "
          f"{np.abs(w_full - w_dc).max():.2e}")
    # Expert driver: only the 3 softest modes.
    w_low, z, m, ifail = la_syevx(k.copy(), z=True, il=0, iu=2)
    analytic = [4 * np.sin(np.pi * (j + 1) / (2 * (n + 1))) ** 2
                for j in range(3)]
    print(f"  3 lowest frequencies²  : {w_low}")
    print(f"  analytic 4sin²(jπ/2(n+1)): {np.array(analytic)}")
    # The tridiagonal driver gets the same spectrum from the diagonals.
    d = np.full(n, 2.0)
    e = np.full(n - 1, -1.0)
    w_tri = la_stev(d, e)
    print(f"  LA_STEV vs LA_SYEV: {np.abs(w_tri - w_full).max():.2e}\n")


def stability_analysis():
    print("=== 2. Stability of a nonsymmetric system matrix ===")
    rng = np.random.default_rng(42)
    n = 40
    # A random stable-ish system pushed near the boundary.
    a = rng.standard_normal((n, n)) / np.sqrt(n) - 0.4 * np.eye(n)
    w, vr = la_geev(a.copy(), vr=True)
    abscissa = w.real.max()
    print(f"  spectral abscissa max Re(λ) = {abscissa:+.4f} "
          f"({'stable' if abscissa < 0 else 'UNSTABLE'})")
    # Residual of the dominant eigenpair.
    j = int(np.argmax(w.real))
    r = np.linalg.norm(a @ vr[:, j] - w[j] * vr[:, j])
    print(f"  dominant eigenpair residual = {r:.2e}")
    # Invariant subspace of the unstable/slow part via ordered Schur.
    t = a.copy()
    w2, vs, sdim = la_gees(t, vs=True, select=lambda lam: lam.real > -0.2)
    print(f"  {sdim} eigenvalues with Re > -0.2 moved to the leading "
          f"Schur block")
    q1 = vs[:, :sdim]
    resid = np.linalg.norm(a @ q1 - q1 @ (q1.T @ a @ q1))
    print(f"  invariant-subspace residual ‖A Q₁ − Q₁ (Q₁ᵀAQ₁)‖ = "
          f"{resid:.2e}\n")


def low_rank_compression():
    print("=== 3. Low-rank compression by truncated SVD ===")
    rng = np.random.default_rng(7)
    m, n, true_rank = 60, 40, 8
    base = (rng.standard_normal((m, true_rank))
            @ rng.standard_normal((true_rank, n)))
    noisy = base + 1e-3 * rng.standard_normal((m, n))
    s, u, vt = la_gesvd(noisy.copy(), u=True, vt=True)
    print(f"  σ₈/σ₉ spectral gap: {s[true_rank - 1] / s[true_rank]:.1f}×")
    for k in (4, true_rank, 16):
        ak = (u[:, :k] * s[:k]) @ vt[:k, :]
        err = np.linalg.norm(noisy - ak, 2)
        # Eckart–Young: best rank-k error equals σ_{k+1}.
        print(f"  rank {k:2d}: ‖A − A_k‖₂ = {err:.4e}   "
              f"(σ_{k + 1} = {s[k]:.4e})")
    print()


if __name__ == "__main__":
    vibration_modes()
    stability_analysis()
    low_rank_compression()
