#!/usr/bin/env python
"""Every linear-equation driver of Appendix G on its natural workload.

A one-dimensional Poisson/heat-conduction chain gives each structured
solver a realistic job: the same physical problem is solved as a dense
system, a band system, a tridiagonal system, an SPD system and a packed
system, and each driver's accuracy and problem-size economy is printed.

Run:  python examples/linear_systems.py
"""

import numpy as np

from repro import (la_gbsv, la_gesv, la_gtsv, la_hesv, la_pbsv, la_posv,
                   la_ppsv, la_ptsv, la_spsv, la_sysv)
from repro.storage import full_to_band, full_to_sym_band, pack


def poisson1d(n: int) -> np.ndarray:
    """The −u'' finite-difference matrix: SPD, tridiagonal."""
    return (np.diag(np.full(n, 2.0)) + np.diag(np.full(n - 1, -1.0), 1)
            + np.diag(np.full(n - 1, -1.0), -1))


def report(name, x, x_ref, storage_elems):
    err = np.abs(x - x_ref).max()
    print(f"  {name:10s} storage = {storage_elems:7d} elements,  "
          f"max error vs dense = {err:.2e}")


def main():
    n = 200
    a = poisson1d(n)
    rng = np.random.default_rng(0)
    f = rng.standard_normal(n)          # heat source

    print(f"1-D Poisson problem, n = {n}: one physical system, "
          "five storage formats\n")

    # Dense general solver — the baseline.
    x_dense = f.copy()
    la_gesv(a.copy(), x_dense)
    print(f"  {'LA_GESV':10s} storage = {n * n:7d} elements  (baseline)")

    # Dense SPD: same matrix, half the factorization work.
    x = f.copy()
    la_posv(a.copy(), x)
    report("LA_POSV", x, x_dense, n * n)

    # Symmetric indefinite (works although A happens to be definite).
    x = f.copy()
    la_sysv(a.copy(), x)
    report("LA_SYSV", x, x_dense, n * n)

    # Packed SPD: n(n+1)/2 elements.
    ap = pack(a, "U")
    x = f.copy()
    la_ppsv(ap, x)
    report("LA_PPSV", x, x_dense, n * (n + 1) // 2)

    # Packed symmetric indefinite.
    ap = pack(a, "U")
    x = f.copy()
    la_spsv(ap, x)
    report("LA_SPSV", x, x_dense, n * (n + 1) // 2)

    # General band (kl = ku = 1): 4n elements in factored-band form.
    kl = ku = 1
    ab = np.zeros((2 * kl + ku + 1, n))
    ab[kl:, :] = full_to_band(a, kl, ku)
    x = f.copy()
    la_gbsv(ab, x, kl=kl)
    report("LA_GBSV", x, x_dense, ab.size)

    # SPD band: 2n elements.
    abp = full_to_sym_band(a, 1, "U")
    x = f.copy()
    la_pbsv(abp, x)
    report("LA_PBSV", x, x_dense, abp.size)

    # General tridiagonal: 3n − 2 elements.
    dl = np.full(n - 1, -1.0)
    d = np.full(n, 2.0)
    du = np.full(n - 1, -1.0)
    x = f.copy()
    la_gtsv(dl, d, du, x)
    report("LA_GTSV", x, x_dense, 3 * n - 2)

    # SPD tridiagonal: 2n − 1 elements.
    d = np.full(n, 2.0)
    e = np.full(n - 1, -1.0)
    x = f.copy()
    la_ptsv(d, e, x)
    report("LA_PTSV", x, x_dense, 2 * n - 1)

    # A complex Hermitian indefinite example: an impedance-like system.
    print("\nComplex Hermitian indefinite (LA_HESV):")
    m = 60
    h = rng.standard_normal((m, m)) + 1j * rng.standard_normal((m, m))
    h = h + np.conj(h.T)
    np.fill_diagonal(h, h.diagonal().real + np.arange(m) - m / 2)
    x_true = rng.standard_normal(m) + 1j * rng.standard_normal(m)
    b = h @ x_true
    la_hesv(h.copy(), b)
    print(f"  max error = {np.abs(b - x_true).max():.2e}")


if __name__ == "__main__":
    main()
