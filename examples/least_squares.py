#!/usr/bin/env python
"""Least squares through LA_GELS/LA_GELSX/LA_GELSS and the generalized
problems LA_GGLSE (constrained fitting) and LA_GGGLM (Gauss–Markov).

Scenario: fitting a polynomial to noisy measurements —
* plain fit (LA_GELS),
* rank-deficient basis rescued by the rank-revealing drivers
  (LA_GELSX / LA_GELSS),
* fit constrained to pass exactly through calibration points (LA_GGLSE),
* estimation with correlated noise (LA_GGGLM).

Run:  python examples/least_squares.py
"""

import numpy as np

from repro import la_gels, la_gelss, la_gelsx, la_ggglm, la_gglse


def plain_fit():
    print("=== Polynomial fit with LA_GELS ===")
    rng = np.random.default_rng(5)
    m, deg = 50, 4
    t = np.linspace(-1, 1, m)
    coeffs_true = np.array([0.5, -1.0, 2.0, 0.3, -0.7])
    a = np.vander(t, deg + 1, increasing=True)
    y = a @ coeffs_true + 0.01 * rng.standard_normal(m)
    x = la_gels(a.copy(), y.copy())
    print(f"  true coefficients : {coeffs_true}")
    print(f"  fitted            : {np.round(x, 3)}")
    print(f"  max coefficient error = {np.abs(x - coeffs_true).max():.3f}\n")


def rank_deficient_fit():
    print("=== Rank-deficient basis: LA_GELSX and LA_GELSS ===")
    rng = np.random.default_rng(6)
    m = 40
    t = np.linspace(0, 1, m)
    # A deliberately redundant basis: the last column duplicates a
    # combination of the first two.
    a = np.column_stack([np.ones(m), t, t ** 2, 1.0 + t])
    y = 2 * np.ones(m) + 3 * t + 0.5 * t ** 2 \
        + 0.01 * rng.standard_normal(m)
    x1, rank1 = la_gelsx(a.copy(), y.copy(), rcond=1e-10)
    x2, rank2, s = la_gelss(a.copy(), y.copy(), rcond=1e-10)
    print(f"  LA_GELSX: numerical rank = {rank1} of 4, "
          f"min-norm solution norm = {np.linalg.norm(x1):.4f}")
    print(f"  LA_GELSS: numerical rank = {rank2},  singular values = "
          f"{np.round(s, 4)}")
    print(f"  both give the same minimum-norm fit: "
          f"{np.abs(x1 - x2).max():.2e}")
    resid1 = np.linalg.norm(a @ x1 - y)
    print(f"  residual = {resid1:.4f} (noise floor "
          f"≈ {0.01 * np.sqrt(m):.4f})\n")


def constrained_fit():
    print("=== Equality-constrained fit with LA_GGLSE ===")
    rng = np.random.default_rng(8)
    m, deg = 60, 3
    t = np.linspace(0, 2, m)
    a = np.vander(t, deg + 1, increasing=True)
    y_true = 1.0 + 0.5 * t - 0.25 * t ** 2 + 0.1 * t ** 3
    y = y_true + 0.05 * rng.standard_normal(m)
    # Constraints: the curve must pass exactly through the calibration
    # points f(0) = 1 and f(2) = y_true(2).
    bmat = np.vander(np.array([0.0, 2.0]), deg + 1, increasing=True)
    d = np.array([1.0, 1.0 + 0.5 * 2 - 0.25 * 4 + 0.1 * 8])
    x = la_gglse(a.copy(), bmat.copy(), y.copy(), d.copy())
    check = bmat @ x
    print(f"  constraint residual |Bx − d| = "
          f"{np.abs(check - d).max():.2e} (exact interpolation)")
    unconstrained = la_gels(a.copy(), y.copy())
    print(f"  unconstrained endpoints miss by "
          f"{np.abs(bmat @ unconstrained - d).max():.3f}\n")


def gauss_markov():
    print("=== Gauss–Markov estimation with LA_GGGLM ===")
    rng = np.random.default_rng(9)
    n, m, p = 30, 4, 30
    a = rng.standard_normal((n, m))
    x_true = np.array([1.0, -2.0, 0.5, 3.0])
    # Correlated noise d = A x + B y with B the noise-shaping factor and
    # y standard white noise of minimum norm.
    bchol = np.tril(rng.standard_normal((n, p)) * 0.1) \
        + np.eye(n, p) * 0.05
    d = a @ x_true + bchol @ rng.standard_normal(p) * 0.0  # noise-free d
    x, y = la_ggglm(a.copy(), bchol.copy(), d.copy())
    print(f"  estimated x = {np.round(x, 6)}")
    print(f"  ‖y‖ (whitened noise needed) = {np.linalg.norm(y):.2e} "
          "(0 — data is consistent)")
    # Now with actual noise.
    d2 = a @ x_true + bchol @ rng.standard_normal(p)
    x2, y2 = la_ggglm(a.copy(), bchol.copy(), d2.copy())
    print(f"  with noise: x error = {np.abs(x2 - x_true).max():.3f}, "
          f"‖y‖ = {np.linalg.norm(y2):.3f}")


if __name__ == "__main__":
    plain_fit()
    rank_deficient_fit()
    constrained_fit()
    gauss_markov()
