#!/usr/bin/env python
"""The LA_GESV "easy-to-use test program" of paper Section 6 /
Appendix F.

Runs the Appendix-F workload (three matrices, four call forms, NRHS 50
and one, single precision) at a chosen threshold and prints the report
in the paper's exact layout — including the "Test Partly Fails" variant
when the threshold is set below the hardest case's ratio.

Run:  python examples/test_program_la_gesv.py [threshold]
"""

import sys

from repro.testing import GesvTestProgram


def main():
    threshold = float(sys.argv[1]) if len(sys.argv) > 1 else 10.0
    report = GesvTestProgram(threshold=threshold).run()
    print(report.format())
    if threshold >= 10.0:
        print()
        print("To see the paper's 'Test Partly Fails' outcome, rerun with")
        worst = max(c.ratio for c in report.cases)
        print(f"a threshold below the hardest ratio ({worst:.3f}):")
        print(f"    python examples/test_program_la_gesv.py "
              f"{worst * 0.95:.2f}")


if __name__ == "__main__":
    main()
