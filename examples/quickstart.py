#!/usr/bin/env python
"""Quickstart: the paper's Figures 1–3, side by side.

Figure 1 uses the F77_LAPACK generic interface (explicit N/NRHS/LDA…);
Figure 2 the LAPACK90 interface (``la_gesv(A, B)``); Figure 3 runs both
on the same N=500 system and times them — the paper's motivating
demonstration that the convenient interface costs almost nothing.

Run:  python examples/quickstart.py
"""

import time

import numpy as np

from repro import f77, la_gesv
from repro.core.precision import SP, DP, wp


def example1_f77():
    """Paper Figure 1 — PROGRAM EXAMPLE with USE F77_LAPACK."""
    print("=== Example 1 (Fig. 1): F77_LAPACK generic interface ===")
    WP = wp(SP)                     # USE LA_PRECISION, ONLY: WP => SP
    n, nrhs = 5, 2
    rng = np.random.default_rng(1)
    a = rng.random((n, n)).astype(WP)          # CALL RANDOM_NUMBER(A)
    b = np.column_stack([a.sum(axis=1) * j     # B(:,J) = SUM(A, DIM=2)*J
                         for j in range(1, nrhs + 1)]).astype(WP)
    ipiv = np.zeros(n, dtype=np.int64)
    lda = ldb = n
    info = f77.la_gesv(n, nrhs, a, lda, ipiv, b, ldb)
    print("INFO =", info)
    if nrhs < 6 and n < 11:
        print("The solution:")
        for j in range(nrhs):
            print("  " + " ".join(f"{v:9.3f}" for v in b[:, j]))
    print()


def example2_f90():
    """Paper Figure 2 — the same computation via CALL LA_GESV(A, B)."""
    print("=== Example 2 (Fig. 2): LAPACK90 interface ===")
    WP = wp(SP)
    n, nrhs = 5, 2
    rng = np.random.default_rng(1)
    a = rng.random((n, n)).astype(WP)
    b = np.column_stack([a.sum(axis=1) * j
                         for j in range(1, nrhs + 1)]).astype(WP)
    la_gesv(a, b)                   # shapes inferred, workspace internal
    if nrhs < 6 and n < 11:
        print("The solution:")
        for j in range(nrhs):
            print("  " + " ".join(f"{v:9.3f}" for v in b[:, j]))
    print()


def example3_both():
    """Paper Figure 3 — time F77GESV vs F90GESV on N = 500."""
    print("=== Example 3 (Fig. 3): timing both interfaces, N = 500 ===")
    WP = wp(SP)
    n, nrhs = 500, 2
    rng = np.random.default_rng(1)
    a0 = rng.random((n, n)).astype(WP)
    b0 = np.column_stack([a0.sum(axis=1) * j
                          for j in range(1, nrhs + 1)]).astype(WP)
    ipiv = np.zeros(n, dtype=np.int64)

    a, b = a0.copy(), b0.copy()
    t1 = time.perf_counter()
    info = f77.la_gesv(n, nrhs, a, n, ipiv, b, n)
    t2 = time.perf_counter()
    print(f"INFO and CPUTIME of F77GESV  {info}  {t2 - t1:.4f} s")

    a, b = a0.copy(), b0.copy()
    t1 = time.perf_counter()
    la_gesv(a, b)
    t2 = time.perf_counter()
    print(f"CPUTIME of F90GESV  {t2 - t1:.4f} s")
    print("(the wrapper overhead is per-call and constant; see "
          "benchmarks/test_fig3_overhead.py)")
    print()


def double_precision_and_complex():
    """The genericity claim: the same code in DP and in COMPLEX."""
    print("=== Generic dispatch: DP and COMPLEX through one name ===")
    for kind, cplx, label in [(DP, False, "REAL(DP)"),
                              (SP, True, "COMPLEX(SP)"),
                              (DP, True, "COMPLEX(DP)")]:
        WP = wp(kind, complex=cplx)
        rng = np.random.default_rng(2)
        n = 5
        a = rng.random((n, n)).astype(WP)
        if cplx:
            a = a + 1j * rng.random((n, n)).astype(WP)
        x_true = np.ones(n, dtype=WP)
        b = (a @ x_true).astype(WP)
        la_gesv(a, b)
        err = np.abs(b - 1).max()
        print(f"  {label:12s} -> max |x - 1| = {err:.2e}")
    print()


if __name__ == "__main__":
    example1_f77()
    example2_f90()
    example3_both()
    double_precision_and_complex()
